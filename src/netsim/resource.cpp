#include "netsim/resource.h"

namespace deepflow::netsim {

VpcId ResourceRegistry::create_vpc(std::string name, std::string region) {
  const VpcId id = next_vpc_++;
  vpcs_.emplace(id, Vpc{std::move(name), std::move(region)});
  ++version_;
  return id;
}

NodeId ResourceRegistry::create_node(VpcId vpc, std::string name,
                                     std::string az) {
  const NodeId id = next_node_++;
  nodes_.emplace(id, Node{vpc, std::move(name), std::move(az)});
  ++version_;
  return id;
}

PodId ResourceRegistry::create_pod(NodeId node, std::string name, Ipv4 ip,
                                   ServiceId service,
                                   std::vector<Label> labels) {
  const PodId id = next_pod_++;
  pods_.emplace(id, Pod{node, std::move(name), ip, service, std::move(labels)});
  ip_to_pod_.emplace(ip.addr, id);
  ++version_;
  return id;
}

ServiceId ResourceRegistry::create_service(VpcId vpc, std::string name) {
  const ServiceId id = next_service_++;
  services_.emplace(id, Service{vpc, std::move(name)});
  ++version_;
  return id;
}

void ResourceRegistry::register_node_ip(NodeId node, Ipv4 ip) {
  ip_to_node_.emplace(ip.addr, node);
  ++version_;
}

ResourceInfo ResourceRegistry::resolve(Ipv4 ip) const {
  ResourceInfo info;
  NodeId node_id = 0;
  if (const auto pod_it = ip_to_pod_.find(ip.addr); pod_it != ip_to_pod_.end()) {
    const Pod& pod = pods_.at(pod_it->second);
    info.pod = pod_it->second;
    info.pod_name = pod.name;
    info.service = pod.service;
    info.custom_labels = pod.labels;
    node_id = pod.node;
    if (pod.service != 0) {
      if (const auto svc = services_.find(pod.service); svc != services_.end()) {
        info.service_name = svc->second.name;
      }
    }
  } else if (const auto node_it = ip_to_node_.find(ip.addr);
             node_it != ip_to_node_.end()) {
    node_id = node_it->second;
  }
  if (node_id != 0) {
    const auto node_it = nodes_.find(node_id);
    if (node_it != nodes_.end()) {
      info.node = node_id;
      info.node_name = node_it->second.name;
      info.availability_zone = node_it->second.az;
      if (const auto vpc = vpcs_.find(node_it->second.vpc); vpc != vpcs_.end()) {
        info.vpc = node_it->second.vpc;
        info.vpc_name = vpc->second.name;
        info.region = vpc->second.region;
      }
    }
  }
  return info;
}

ResourceIds ResourceRegistry::resolve_ids(Ipv4 ip) const {
  ResourceIds ids;
  NodeId node_id = 0;
  if (const auto pod_it = ip_to_pod_.find(ip.addr); pod_it != ip_to_pod_.end()) {
    const Pod& pod = pods_.at(pod_it->second);
    ids.pod = pod_it->second;
    ids.service = pod.service;
    node_id = pod.node;
  } else if (const auto node_it = ip_to_node_.find(ip.addr);
             node_it != ip_to_node_.end()) {
    node_id = node_it->second;
  }
  if (node_id != 0) {
    const auto node_it = nodes_.find(node_id);
    if (node_it != nodes_.end()) {
      ids.node = node_id;
      if (vpcs_.contains(node_it->second.vpc)) ids.vpc = node_it->second.vpc;
    }
  }
  return ids;
}

const std::string& ResourceRegistry::vpc_name(VpcId id) const {
  const auto it = vpcs_.find(id);
  return it == vpcs_.end() ? empty_ : it->second.name;
}

const std::string& ResourceRegistry::node_name(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? empty_ : it->second.name;
}

const std::string& ResourceRegistry::pod_name(PodId id) const {
  const auto it = pods_.find(id);
  return it == pods_.end() ? empty_ : it->second.name;
}

const std::string& ResourceRegistry::service_name(ServiceId id) const {
  const auto it = services_.find(id);
  return it == services_.end() ? empty_ : it->second.name;
}

std::vector<PodId> ResourceRegistry::pods_of_service(ServiceId service) const {
  std::vector<PodId> out;
  for (const auto& [id, pod] : pods_) {
    if (pod.service == service) out.push_back(id);
  }
  return out;
}

std::optional<Ipv4> ResourceRegistry::pod_ip(PodId pod) const {
  const auto it = pods_.find(pod);
  if (it == pods_.end()) return std::nullopt;
  return it->second.ip;
}

}  // namespace deepflow::netsim
