// Network infrastructure devices: the hops a message traverses between two
// microservice components. DeepFlow eliminates network blind spots by
// capturing traffic at these hops (cBPF/AF_PACKET taps, paper §3.2.1 and
// Appendix A); the fault injector reproduces the anomaly sources of Fig 2(b).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "kernelsim/socket.h"

namespace deepflow::netsim {

/// Where in the infrastructure a device sits. Mirrors Fig 2(b)'s breakdown
/// of network-side anomaly sources.
enum class DeviceKind : u8 {
  kVeth,        // pod-side virtual ethernet
  kVirtualNic,  // VM / node virtual NIC
  kVSwitch,     // virtual switch (OVS-style)
  kPhysicalNic,
  kTorSwitch,   // top-of-rack
  kL4Gateway,   // load balancer that forwards without touching TCP seq
  kL7Gateway,   // proxy that terminates connections (e.g. ingress)
  kMiddleware,  // message queue / broker appliance
};

std::string_view device_kind_name(DeviceKind kind);

/// Fault configuration of one device (all off by default). The injector
/// reproduces the production anomaly classes: latency spikes, packet loss
/// (surfacing as TCP retransmissions), connection resets, and the ARP-storm
/// NIC defect of case study §4.1.2.
struct FaultProfile {
  DurationNs extra_latency_ns = 0;   // added to every traversal
  double drop_probability = 0.0;     // each traversal; drop => retransmit
  double reset_probability = 0.0;    // each traversal; RST both ends
  bool arp_anomaly = false;          // emits spurious ARP on new flows
  DurationNs retransmit_timeout_ns = 200 * kMillisecond;
};

/// Monotonic counters maintained per device. The agent exports these as the
/// network metrics correlated with traces (§3.4, case study §4.1.3).
struct DeviceMetrics {
  u64 packets = 0;
  u64 bytes = 0;
  u64 retransmissions = 0;
  u64 resets = 0;
  u64 arp_requests = 0;  // gratuitous/spurious ARP observed
  DurationNs total_transit_ns = 0;  // sum of per-packet transit times
};

/// What a capture tap observes when a message traverses a device.
struct TapContext {
  const struct Device* device = nullptr;
  const kernelsim::WireMessage* message = nullptr;
  TimestampNs timestamp = 0;    // when the message passed this device
  bool is_retransmission = false;
};

/// AF_PACKET-style capture callback; attached by the eBPF runtime's socket
/// filter (cBPF) programs.
using PacketTap = std::function<void(const TapContext&)>;

struct Device {
  u32 id = 0;
  DeviceKind kind = DeviceKind::kVeth;
  std::string name;           // e.g. "node-1/eth0"
  u32 node_id = 0;            // owning node (0 for shared fabric devices)
  DurationNs base_latency_ns = 20'000;  // one-way traversal latency
  FaultProfile fault;
  DeviceMetrics metrics;
  std::vector<PacketTap> taps;

  void attach_tap(PacketTap tap) { taps.push_back(std::move(tap)); }

  void fire_taps(const TapContext& ctx) const {
    for (const auto& tap : taps) tap(ctx);
  }
};

}  // namespace deepflow::netsim
