#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace deepflow {

LatencyHistogram::LatencyHistogram(u64 max_value)
    : max_value_(std::max<u64>(max_value, kSubBucketCount)),
      min_seen_(std::numeric_limits<u64>::max()) {
  // Octaves needed so that the top octave covers max_value_.
  const u32 max_bit = 64u - static_cast<u32>(std::countl_zero(max_value_));
  const u32 octaves = max_bit <= kSubBucketBits ? 1 : max_bit - kSubBucketBits + 1;
  counts_.assign(static_cast<size_t>(octaves) * kSubBucketCount, 0);
}

size_t LatencyHistogram::bucket_index(u64 value) const {
  if (value < 1) value = 1;
  // Octave 0 covers [0, kSubBucketCount) linearly; octave k scales by 2^k.
  const u32 bit = 64u - static_cast<u32>(std::countl_zero(value));
  const u32 octave = bit <= kSubBucketBits ? 0 : bit - kSubBucketBits;
  const u64 sub = value >> octave;  // in [kSubBucketCount/2, kSubBucketCount)
  size_t index = static_cast<size_t>(octave) * kSubBucketCount +
                 static_cast<size_t>(sub);
  return std::min(index, counts_.size() - 1);
}

u64 LatencyHistogram::bucket_low(size_t index) const {
  const u32 octave = static_cast<u32>(index / kSubBucketCount);
  const u64 sub = index % kSubBucketCount;
  return sub << octave;
}

u64 LatencyHistogram::bucket_high(size_t index) const {
  const u32 octave = static_cast<u32>(index / kSubBucketCount);
  const u64 sub = index % kSubBucketCount;
  return ((sub + 1) << octave) - 1;
}

void LatencyHistogram::record(u64 value_ns) { record_n(value_ns, 1); }

void LatencyHistogram::record_n(u64 value_ns, u64 count) {
  if (count == 0) return;
  if (value_ns > max_value_) {
    overflow_count_ += count;
    value_ns = max_value_;
  }
  counts_[bucket_index(value_ns)] += count;
  total_count_ += count;
  total_sum_ += value_ns * count;
  min_seen_ = std::min(min_seen_, value_ns);
  max_seen_ = std::max(max_seen_, value_ns);
}

u64 LatencyHistogram::min() const { return total_count_ ? min_seen_ : 0; }
u64 LatencyHistogram::max() const { return max_seen_; }

double LatencyHistogram::mean() const {
  return total_count_ ? static_cast<double>(total_sum_) /
                            static_cast<double>(total_count_)
                      : 0.0;
}

u64 LatencyHistogram::value_at_quantile(double q) const {
  if (total_count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const u64 target = static_cast<u64>(q * static_cast<double>(total_count_));
  u64 running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (running > target || (q >= 1.0 && running >= total_count_)) {
      // Midpoint of the bucket bounds the relative error; clamping to the
      // observed range keeps low quantiles >= min (and makes one-sample
      // histograms exact at every quantile).
      return std::clamp((bucket_low(i) + bucket_high(i)) / 2, min_seen_,
                        max_seen_);
    }
  }
  return max_seen_;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  total_sum_ = 0;
  min_seen_ = std::numeric_limits<u64>::max();
  max_seen_ = 0;
  overflow_count_ = 0;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Merging an empty histogram is a strict no-op: without this guard its
  // sentinel min_seen_ / zero max_seen_ must never leak into the target.
  if (other.total_count_ == 0) return;
  const size_t n = std::min(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  // Overlength buckets of `other` clamp into our top bucket.
  for (size_t i = n; i < other.counts_.size(); ++i) {
    counts_.back() += other.counts_[i];
  }
  total_count_ += other.total_count_;
  total_sum_ += other.total_sum_;
  if (other.total_count_) {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  overflow_count_ += other.overflow_count_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(total_count_), mean() / 1e3,
                static_cast<double>(p50()) / 1e3,
                static_cast<double>(p90()) / 1e3,
                static_cast<double>(p99()) / 1e3,
                static_cast<double>(max()) / 1e3);
  return buf;
}

}  // namespace deepflow
