#include "common/governor.h"

#include <algorithm>

namespace deepflow {

const char* overload_level_name(OverloadLevel level) {
  switch (level) {
    case OverloadLevel::kNormal: return "normal";
    case OverloadLevel::kSeal: return "seal";
    case OverloadLevel::kDownsample: return "downsample";
    case OverloadLevel::kShed: return "shed";
    case OverloadLevel::kRefuse: return "refuse";
  }
  return "?";
}

CompletenessLedger::CompletenessLedger(DurationNs window_ns,
                                       size_t max_windows)
    : window_ns_(window_ns == 0 ? kSecond : window_ns),
      max_windows_(max_windows == 0 ? 1 : max_windows) {}

CompletenessWindow& CompletenessLedger::window_locked(TimestampNs ts) {
  const TimestampNs start = ts - ts % window_ns_;
  CompletenessWindow& w = ledger_[start];
  w.window_start = start;
  if (ledger_.size() > max_windows_) {
    // Evict the oldest window -- the ledger is bounded like everything else
    // the governor watches.
    auto oldest = ledger_.begin();
    if (oldest->first != start) ledger_.erase(oldest);
  }
  return w;
}

void CompletenessLedger::note_stored(TimestampNs ts, u64 spans) {
  std::lock_guard<std::mutex> lock(mu_);
  CompletenessWindow& w = window_locked(ts);
  w.offered += spans;
  w.stored += spans;
}

void CompletenessLedger::note_anomalous_kept(TimestampNs ts, u64 spans) {
  std::lock_guard<std::mutex> lock(mu_);
  CompletenessWindow& w = window_locked(ts);
  w.offered += spans;
  w.stored += spans;
  w.anomalous_kept += spans;
}

void CompletenessLedger::note_sampled_kept(TimestampNs ts, u64 spans) {
  std::lock_guard<std::mutex> lock(mu_);
  CompletenessWindow& w = window_locked(ts);
  w.offered += spans;
  w.stored += spans;
}

void CompletenessLedger::note_downsampled(TimestampNs ts, u64 spans) {
  std::lock_guard<std::mutex> lock(mu_);
  CompletenessWindow& w = window_locked(ts);
  w.offered += spans;
  w.downsampled += spans;
}

void CompletenessLedger::note_refused(TimestampNs ts, u64 spans) {
  std::lock_guard<std::mutex> lock(mu_);
  CompletenessWindow& w = window_locked(ts);
  w.offered += spans;
  w.refused += spans;
}

std::vector<CompletenessWindow> CompletenessLedger::windows(
    TimestampNs from, TimestampNs to) const {
  std::vector<CompletenessWindow> out;
  std::lock_guard<std::mutex> lock(mu_);
  const DurationNs width = window_ns_;
  for (auto it = ledger_.lower_bound(from >= width ? from - width + 1 : 0);
       it != ledger_.end() && it->first < to; ++it) {
    if (it->first + width <= from) continue;
    out.push_back(it->second);
  }
  return out;
}

std::vector<CompletenessWindow> merge_completeness_windows(
    std::vector<CompletenessWindow> base,
    const std::vector<CompletenessWindow>& extra) {
  std::map<TimestampNs, CompletenessWindow> merged;
  for (const CompletenessWindow& w : base) merged[w.window_start] = w;
  for (const CompletenessWindow& w : extra) {
    CompletenessWindow& m = merged[w.window_start];
    m.window_start = w.window_start;
    m.offered += w.offered;
    m.stored += w.stored;
    m.downsampled += w.downsampled;
    m.refused += w.refused;
    m.anomalous_kept += w.anomalous_kept;
  }
  base.clear();
  base.reserve(merged.size());
  for (auto& [start, w] : merged) base.push_back(w);
  return base;
}

ResourceGovernor::ResourceGovernor(GovernorConfig config)
    : config_(config),
      ledger_(config.completeness_window_ns, config.completeness_max_windows) {
  keep_pct_.store(100, std::memory_order_relaxed);
}

void ResourceGovernor::add_bytes(GovernorAccount account, size_t bytes) {
  if (!config_.enabled || bytes == 0) return;
  bytes_[static_cast<size_t>(account)].fetch_add(bytes,
                                                 std::memory_order_relaxed);
}

void ResourceGovernor::sub_bytes(GovernorAccount account, size_t bytes) {
  if (!config_.enabled || bytes == 0) return;
  // Saturating subtract: accounting is approximate by design (owners round
  // container overheads); never let a rounding mismatch wrap to huge totals.
  std::atomic<size_t>& cell = bytes_[static_cast<size_t>(account)];
  size_t cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur >= bytes ? cur - bytes : 0,
                                     std::memory_order_relaxed)) {
  }
}

size_t ResourceGovernor::account_bytes(GovernorAccount account) const {
  return bytes_[static_cast<size_t>(account)].load(std::memory_order_relaxed);
}

size_t ResourceGovernor::total_bytes() const {
  size_t total = 0;
  for (size_t i = 0; i < kGovernorAccounts; ++i) {
    if (i == static_cast<size_t>(GovernorAccount::kUnflushedStore)) continue;
    total += bytes_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double ResourceGovernor::pressure() const {
  if (!active()) return 0.0;
  double p = static_cast<double>(total_bytes()) /
             static_cast<double>(config_.budget_bytes);
  for (size_t i = 0; i < kGovernorAccounts; ++i) {
    const size_t ceiling = config_.account_budget_bytes[i];
    if (ceiling == 0) continue;
    p = std::max(p, static_cast<double>(
                        bytes_[i].load(std::memory_order_relaxed)) /
                        static_cast<double>(ceiling));
  }
  return p;
}

double ResourceGovernor::enter_threshold(OverloadLevel level) const {
  switch (level) {
    case OverloadLevel::kNormal: return 0.0;
    case OverloadLevel::kSeal: return config_.seal_enter;
    case OverloadLevel::kDownsample: return config_.downsample_enter;
    case OverloadLevel::kShed: return config_.shed_enter;
    case OverloadLevel::kRefuse: return config_.refuse_enter;
  }
  return 1.0;
}

void ResourceGovernor::refresh_keep_pct_locked(double pressure) {
  // Linear ramp from healthy_keep_pct at downsample_enter down to
  // healthy_keep_min_pct at shed_enter; clamped outside that band.
  const double lo = config_.downsample_enter;
  const double hi = config_.shed_enter;
  u32 pct = 100;
  if (pressure >= hi) {
    pct = config_.healthy_keep_min_pct;
  } else if (pressure >= lo) {
    const double t = hi > lo ? (pressure - lo) / (hi - lo) : 1.0;
    pct = static_cast<u32>(config_.healthy_keep_pct -
                           t * (config_.healthy_keep_pct -
                                config_.healthy_keep_min_pct));
  } else {
    pct = config_.healthy_keep_pct;
  }
  keep_pct_.store(pct, std::memory_order_relaxed);
}

OverloadLevel ResourceGovernor::refresh() {
  if (!active()) return OverloadLevel::kNormal;
  const double p = pressure();

  // Raw rung the pressure alone would demand.
  OverloadLevel raw = OverloadLevel::kNormal;
  if (p >= config_.refuse_enter) {
    raw = OverloadLevel::kRefuse;
  } else if (p >= config_.shed_enter) {
    raw = OverloadLevel::kShed;
  } else if (p >= config_.downsample_enter) {
    raw = OverloadLevel::kDownsample;
  } else if (p >= config_.seal_enter) {
    raw = OverloadLevel::kSeal;
  }

  const OverloadLevel cur = level();
  if (raw == cur) {
    if (cur >= OverloadLevel::kDownsample) {
      std::lock_guard<std::mutex> lock(ladder_mu_);
      refresh_keep_pct_locked(p);
    }
    return cur;
  }

  std::lock_guard<std::mutex> lock(ladder_mu_);
  OverloadLevel now = level();
  if (raw > now) {
    // Escalation is immediate: overload must not wait out a cool-down.
    now = raw;
  } else {
    // De-escalation: one rung at a time, and only once pressure has fallen
    // clearly below the rung's entry threshold (hysteresis).
    const double exit = enter_threshold(now) - config_.exit_hysteresis;
    if (now != OverloadLevel::kNormal && p < exit) {
      now = static_cast<OverloadLevel>(static_cast<u8>(now) - 1);
    }
  }
  if (now != level()) {
    level_.store(static_cast<u8>(now), std::memory_order_relaxed);
    level_transitions_.fetch_add(1, std::memory_order_relaxed);
    level_entries_[static_cast<size_t>(now)].fetch_add(
        1, std::memory_order_relaxed);
  }
  refresh_keep_pct_locked(p);
  return now;
}

bool ResourceGovernor::admit_healthy(u64 trace_key) {
  if (!active() || level() < OverloadLevel::kDownsample) return true;
  const u32 pct = keep_pct_.load(std::memory_order_relaxed);
  if (pct >= 100) return true;
  const u64 h = mix64(trace_key ^ config_.sample_seed);
  return h % 100 < pct;
}

bool ResourceGovernor::exhausted() const {
  return active() && total_bytes() >= config_.budget_bytes;
}

bool ResourceGovernor::should_force_seal() {
  if (!active() || level() < OverloadLevel::kSeal) return false;
  const u64 n =
      spans_since_seal_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < config_.seal_interval_spans) return false;
  // One winner per interval; racers see the reset counter and keep counting.
  u64 expected = n;
  return spans_since_seal_.compare_exchange_strong(
      expected, 0, std::memory_order_relaxed);
}

void ResourceGovernor::mark_anomalous(u64 trace_key, TimestampNs ts) {
  if (!active() || config_.anomaly_window_ns == 0) return;
  const u64 target = ts / config_.anomaly_window_ns;
  std::lock_guard<std::mutex> lock(anomaly_mu_);
  if (target > anomaly_generation_) {
    if (target == anomaly_generation_ + 1) {
      std::swap(anomalous_prev_, anomalous_cur_);
      anomalous_cur_.clear();
    } else {
      anomalous_prev_.clear();
      anomalous_cur_.clear();
    }
    anomaly_generation_ = target;
  }
  anomalous_cur_.insert(trace_key);
}

bool ResourceGovernor::is_anomalous(u64 trace_key) const {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(anomaly_mu_);
  return anomalous_cur_.count(trace_key) > 0 ||
         anomalous_prev_.count(trace_key) > 0;
}

void ResourceGovernor::note_stored(TimestampNs ts, u64 spans) {
  if (!active()) return;
  ledger_.note_stored(ts, spans);
}

void ResourceGovernor::note_anomalous_kept(TimestampNs ts, u64 spans) {
  if (!active()) return;
  anomalous_kept_spans_.fetch_add(spans, std::memory_order_relaxed);
  ledger_.note_anomalous_kept(ts, spans);
}

void ResourceGovernor::note_sampled_kept(TimestampNs ts, u64 spans) {
  if (!active()) return;
  sampled_kept_spans_.fetch_add(spans, std::memory_order_relaxed);
  ledger_.note_sampled_kept(ts, spans);
}

void ResourceGovernor::note_downsampled(TimestampNs ts, u64 spans) {
  if (!active()) return;
  downsampled_spans_.fetch_add(spans, std::memory_order_relaxed);
  ledger_.note_downsampled(ts, spans);
}

void ResourceGovernor::note_refused(TimestampNs ts, u64 spans) {
  if (!active()) return;
  refused_spans_.fetch_add(spans, std::memory_order_relaxed);
  ledger_.note_refused(ts, spans);
}

void ResourceGovernor::note_refused_batch() {
  if (!active()) return;
  refused_batches_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceGovernor::note_forced_seal() {
  if (!active()) return;
  forced_seals_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceGovernor::note_shed_net(u64 spans) {
  if (!active()) return;
  shed_net_spans_.fetch_add(spans, std::memory_order_relaxed);
}

std::vector<CompletenessWindow> ResourceGovernor::completeness(
    TimestampNs from, TimestampNs to) const {
  return ledger_.windows(from, to);
}

GovernorTelemetry ResourceGovernor::telemetry() const {
  GovernorTelemetry t;
  t.active = active();
  t.level = level();
  t.budget_bytes = config_.budget_bytes;
  t.total_bytes = total_bytes();
  for (size_t i = 0; i < kGovernorAccounts; ++i) {
    t.account_bytes[i] = bytes_[i].load(std::memory_order_relaxed);
  }
  t.level_transitions = level_transitions_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kOverloadLevels; ++i) {
    t.level_entries[i] = level_entries_[i].load(std::memory_order_relaxed);
  }
  t.forced_seals = forced_seals_.load(std::memory_order_relaxed);
  t.downsampled_spans = downsampled_spans_.load(std::memory_order_relaxed);
  t.sampled_kept_spans = sampled_kept_spans_.load(std::memory_order_relaxed);
  t.anomalous_kept_spans =
      anomalous_kept_spans_.load(std::memory_order_relaxed);
  t.refused_batches = refused_batches_.load(std::memory_order_relaxed);
  t.refused_spans = refused_spans_.load(std::memory_order_relaxed);
  t.shed_net_spans = shed_net_spans_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace deepflow
