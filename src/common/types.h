// Fundamental integer aliases and identifier types shared by every DeepFlow
// module. Kept deliberately minimal: wider domain types live with the module
// that owns them (e.g. Span in agent/, syscall ABIs in kernelsim/).
#pragma once

#include <cstdint>

namespace deepflow {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Nanoseconds since the start of a simulation run (simulated clock domain)
/// or since an arbitrary epoch (real clock domain). The two domains are never
/// mixed: simulation data structures carry simulated time, micro-benchmarks
/// measure real time.
using TimestampNs = u64;
/// A duration in nanoseconds.
using DurationNs = u64;

constexpr DurationNs kMicrosecond = 1'000;
constexpr DurationNs kMillisecond = 1'000'000;
constexpr DurationNs kSecond = 1'000'000'000;

/// Process id inside the simulated kernel.
using Pid = u32;
/// Thread id inside the simulated kernel (globally unique, not per-process).
using Tid = u32;
/// Coroutine id for goroutine-style runtimes (0 = not a coroutine).
using CoroutineId = u64;
/// Globally unique socket identifier assigned by the tracing plane.
/// The paper calls this "the DeepFlow-assigned global unique socket ID".
using SocketId = u64;
/// TCP sequence number (32-bit wrap-around semantics as on the wire).
using TcpSeq = u32;
/// Global systrace id assigned during intra-component association (§3.3.2).
using SystraceId = u64;
/// Pseudo-thread id: equals Tid for plain threads, or a synthetic id derived
/// from coroutine ancestry for coroutine runtimes (§3.3.1).
using PseudoThreadId = u64;

constexpr SystraceId kInvalidSystraceId = 0;

}  // namespace deepflow
