#include "common/five_tuple.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace deepflow {

std::string Ipv4::to_string() const {
  std::array<char, 16> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u",
                              (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                              (addr >> 8) & 0xff, addr & 0xff);
  return std::string(buf.data(), static_cast<size_t>(n));
}

Ipv4 Ipv4::parse(const std::string& text) {
  u32 out = 0;
  const char* p = text.data();
  const char* end = p + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) return Ipv4{};
    out = (out << 8) | value;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return Ipv4{};
      ++p;
    }
  }
  if (p != end) return Ipv4{};
  return Ipv4{out};
}

std::string FiveTuple::to_string() const {
  std::string s = src_ip.to_string();
  s += ':';
  s += std::to_string(src_port);
  s += " -> ";
  s += dst_ip.to_string();
  s += ':';
  s += std::to_string(dst_port);
  s += proto == L4Proto::kTcp ? "/tcp" : "/udp";
  return s;
}

}  // namespace deepflow
