// Bounded single-producer/single-consumer ring buffer.
//
// The eBPF perf buffer (src/ebpf) hands events from the "kernel" side to the
// agent's user-space drain loop through one of these per simulated CPU. The
// ring is lossy by design: when full, pushes fail and the producer counts a
// drop, exactly like a real perf ring under burst (the loss counter feeds the
// bench_ablation_perfbuf experiment).
#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "common/types.h"

namespace deepflow {

/// One atomic cursor padded out to a full cache line. The SPSC fast path has
/// the producer spinning on head_ and the consumer on tail_; when both share
/// a line, every push invalidates the consumer's cached tail (and vice
/// versa) — classic false sharing. Padding each cursor into its own line
/// keeps the two sides' cache traffic independent.
struct alignas(64) PaddedCursor {
  std::atomic<size_t> value{0};
};
struct alignas(64) PaddedCounter {
  std::atomic<u64> value{0};
};
// The padding only works if the wrapper really occupies (a multiple of) a
// line; a packed or under-aligned build would silently reintroduce sharing.
static_assert(sizeof(PaddedCursor) == 64 && alignof(PaddedCursor) == 64,
              "ring cursors must each occupy a full cache line");
static_assert(sizeof(PaddedCounter) == 64 && alignof(PaddedCounter) == 64,
              "ring drop counter must occupy a full cache line");

template <typename T>
class SpscRing {
 public:
  /// capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return buffer_.size(); }

  /// Producer side. Returns false (and increments dropped()) when full.
  bool push(T item) {
    const size_t head = head_.value.load(std::memory_order_relaxed);
    const size_t tail = tail_.value.load(std::memory_order_acquire);
    if (head - tail >= buffer_.size()) {
      dropped_.value.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buffer_[head & mask_] = std::move(item);
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when the ring is drained.
  std::optional<T> pop() {
    const size_t tail = tail_.value.load(std::memory_order_relaxed);
    const size_t head = head_.value.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T item = std::move(buffer_[tail & mask_]);
    tail_.value.store(tail + 1, std::memory_order_release);
    return item;
  }

  size_t size() const {
    return head_.value.load(std::memory_order_acquire) -
           tail_.value.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }

  /// Events rejected because the ring was full.
  u64 dropped() const { return dropped_.value.load(std::memory_order_relaxed); }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;
  // Each cursor on its own cache line: head_ is producer-written, tail_ is
  // consumer-written, dropped_ is producer-written on the overflow path.
  PaddedCursor head_;
  PaddedCursor tail_;
  PaddedCounter dropped_;
};

}  // namespace deepflow
