#include "common/thread_pool.h"

#include <atomic>

namespace deepflow {

ThreadPool::ThreadPool(size_t threads) {
  const size_t count = threads == 0 ? 1 : threads;
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  // One task per worker, each pulling indexes from a shared counter: cheap
  // dynamic load balancing without n queue round-trips.
  const size_t tasks = std::min(n, workers_.size());
  for (size_t t = 0; t < tasks; ++t) {
    submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

u64 ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      ++completed_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace deepflow
