// The classic connection five-tuple plus helpers for direction-agnostic flow
// matching. DeepFlow records the five-tuple of every traced message (§3.2.1)
// and uses it (with the TCP sequence) for inter-component association.
#pragma once

#include <string>

#include "common/hash.h"
#include "common/types.h"

namespace deepflow {

/// Transport protocol of a flow.
enum class L4Proto : u8 { kTcp = 6, kUdp = 17 };

/// IPv4 address stored host-order for simple arithmetic in the simulators.
struct Ipv4 {
  u32 addr = 0;

  constexpr bool operator==(const Ipv4&) const = default;
  constexpr auto operator<=>(const Ipv4&) const = default;

  /// Dotted-quad rendering ("10.1.2.3").
  std::string to_string() const;

  /// Parse a dotted quad; returns 0.0.0.0 on malformed input.
  static Ipv4 parse(const std::string& text);
};

/// Source/destination endpoints plus protocol. Equality is directional; use
/// canonical() when a direction-agnostic key is required (e.g. flow tables
/// keyed by connection rather than by packet direction).
struct FiveTuple {
  Ipv4 src_ip;
  Ipv4 dst_ip;
  u16 src_port = 0;
  u16 dst_port = 0;
  L4Proto proto = L4Proto::kTcp;

  constexpr bool operator==(const FiveTuple&) const = default;

  /// The same tuple viewed from the peer's side.
  FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  /// Direction-agnostic canonical form: lower (ip,port) endpoint first.
  FiveTuple canonical() const {
    if (src_ip.addr < dst_ip.addr ||
        (src_ip.addr == dst_ip.addr && src_port <= dst_port)) {
      return *this;
    }
    return reversed();
  }

  u64 hash() const {
    u64 h = hash_combine(src_ip.addr, dst_ip.addr);
    h = hash_combine(h, (static_cast<u64>(src_port) << 16) | dst_port);
    return hash_combine(h, static_cast<u64>(proto));
  }

  /// "10.0.0.1:80 -> 10.0.0.2:4242/tcp"
  std::string to_string() const;
};

struct FiveTupleHash {
  u64 operator()(const FiveTuple& t) const { return t.hash(); }
};

}  // namespace deepflow
