// Shared string-interning registry for the zero-copy ingest hot path.
//
// Low-cardinality span strings (hostnames, device names, protocol methods,
// endpoint templates) are replaced by dense 0-based u32 handles the moment a
// span is appended to a SpanBatch; every later pipeline stage — transport,
// dedup, metrics fold, store encode — compares and hashes 4-byte handles
// instead of copying strings. The server-side LowCardinalityEncoder folds its
// private dictionary onto the same class so agent-side interning and tag
// encoding agree on one ownership model (tested round-trip in
// tests/server/test_tag_encoding.cpp).
//
// Concurrency: intern() takes the writer lock only on first sight of a
// string; the common case (string already known) and lookup() take a shared
// lock. Handle values are dense and permanent — entries are never removed, so
// a handle obtained on one thread can be resolved on any other without
// revalidation. Backing storage is a deque of strings: growth never moves
// existing elements, so string_views handed out by lookup() stay valid for
// the interner's lifetime even while other threads intern new strings.
#pragma once

#include <atomic>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/governor.h"
#include "common/types.h"

namespace deepflow {

class StringInterner {
 public:
  static constexpr u32 kInvalidHandle = 0xffffffffu;

  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Cap the number of distinct strings this interner will accept. Once the
  /// cap is reached, intern() of a *new* string returns kInvalidHandle and
  /// bumps overflow_count(); callers (SpanBatch) fall back to their per-batch
  /// arena path so a cardinality explosion degrades to per-batch copies
  /// instead of unbounded shared growth. 0 (default) = unlimited. Strings
  /// already interned keep resolving regardless of the cap.
  /// NOTE: never cap an interner used by a tag encoder — encoded blobs embed
  /// handles and have no overflow fallback.
  void set_max_entries(size_t max_entries);
  size_t max_entries() const;

  /// Distinct new strings bounced by the cap (`deepflow_interner_overflow`).
  u64 overflow_count() const;

  /// Report byte deltas to a governor's kInterner account (push-based, under
  /// the writer lock). Pass nullptr to detach.
  void set_governor(ResourceGovernor* governor);

  /// Return the dense handle for `text`, assigning the next free one on
  /// first sight. Handles start at 0 and never change.
  u32 intern(std::string_view text);

  /// Handle for `text` if already interned, kInvalidHandle otherwise.
  /// Never mutates — safe to call concurrently with intern().
  u32 find(std::string_view text) const;

  /// Resolve a handle to its string. The view stays valid for the
  /// interner's lifetime (deque storage never relocates). Out-of-range
  /// handles return an empty view.
  std::string_view lookup(u32 handle) const;

  /// Number of distinct strings interned so far (== next handle).
  size_t size() const;

  /// Approximate resident bytes: string payloads + per-entry index cost.
  /// Mirrors the accounting LowCardinalityEncoder::dictionary_bytes() used
  /// before it was folded onto this class.
  size_t approx_bytes() const;

 private:
  struct StringViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct StringViewEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable std::shared_mutex mu_;
  // Keys are views into strings_ elements; deque growth keeps them stable.
  std::unordered_map<std::string_view, u32, StringViewHash, StringViewEq> ids_;
  std::deque<std::string> strings_;
  size_t payload_bytes_ = 0;
  size_t max_entries_ = 0;  ///< 0 = unlimited
  ResourceGovernor* governor_ = nullptr;
  std::atomic<u64> overflow_count_{0};
};

}  // namespace deepflow
