// Minimal leveled logging. The library is quiet by default (benchmarks and
// tests must not drown in output); examples raise the level to show the
// troubleshooting narrative.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace deepflow {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::log_line(level, fmt);
  } else {
    char buf[1024];
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
    std::snprintf(buf, sizeof buf, fmt, std::forward<Args>(args)...);
#pragma GCC diagnostic pop
    detail::log_line(level, buf);
  }
}

#define DF_LOG_DEBUG(...) ::deepflow::log(::deepflow::LogLevel::kDebug, __VA_ARGS__)
#define DF_LOG_INFO(...) ::deepflow::log(::deepflow::LogLevel::kInfo, __VA_ARGS__)
#define DF_LOG_WARN(...) ::deepflow::log(::deepflow::LogLevel::kWarn, __VA_ARGS__)
#define DF_LOG_ERROR(...) ::deepflow::log(::deepflow::LogLevel::kError, __VA_ARGS__)

}  // namespace deepflow
