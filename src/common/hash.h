// Small non-cryptographic hashing helpers used for map keys and id
// derivation across the tracing plane.
#pragma once

#include <string_view>

#include "common/types.h"

namespace deepflow {

/// 64-bit FNV-1a over a byte range.
constexpr u64 fnv1a(std::string_view bytes, u64 seed = 0xcbf29ce484222325ULL) {
  u64 h = seed;
  for (const char c : bytes) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mix an integer into an existing hash (boost::hash_combine flavour,
/// 64-bit variant).
constexpr u64 hash_combine(u64 h, u64 v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

/// Finalizer from MurmurHash3: spreads entropy across all bits so that
/// sequential ids become well-distributed map keys.
constexpr u64 mix64(u64 x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace deepflow
