// Log-linear latency histogram in the spirit of HdrHistogram: constant-time
// recording, bounded relative error, exact counts. Used by the load
// generators (wrk2 substitute) and by every benchmark that reports latency
// percentiles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace deepflow {

/// Records values in [1, max_value] nanoseconds with ~1/64 relative
/// precision. Values above max_value clamp into the top bucket and are
/// counted separately so saturation is visible.
class LatencyHistogram {
 public:
  /// max_value: largest representable latency (default 100 s).
  explicit LatencyHistogram(u64 max_value = 100 * kSecond);

  void record(u64 value_ns);
  /// Record the same value `count` times (for coalesced samples).
  void record_n(u64 value_ns, u64 count);

  u64 count() const { return total_count_; }
  u64 min() const;
  u64 max() const;
  double mean() const;
  /// Value at quantile q in [0, 1]; e.g. q=0.5 for the median. Returns 0 when
  /// empty.
  u64 value_at_quantile(double q) const;
  u64 p50() const { return value_at_quantile(0.50); }
  u64 p90() const { return value_at_quantile(0.90); }
  u64 p99() const { return value_at_quantile(0.99); }
  /// Number of recordings that exceeded max_value (clamped).
  u64 overflow_count() const { return overflow_count_; }

  void reset();
  /// Merge another histogram recorded with identical bounds.
  void merge(const LatencyHistogram& other);

  /// One-line human-readable summary ("n=... p50=...us p90=...us ...").
  std::string summary() const;

  /// Approximate resident bytes (overload-governor accounting).
  size_t approx_bytes() const {
    return sizeof(LatencyHistogram) + counts_.size() * sizeof(u64);
  }

 private:
  static constexpr u32 kSubBucketBits = 6;  // 64 linear sub-buckets per octave
  static constexpr u32 kSubBucketCount = 1u << kSubBucketBits;

  size_t bucket_index(u64 value) const;
  u64 bucket_low(size_t index) const;
  u64 bucket_high(size_t index) const;

  u64 max_value_;
  std::vector<u64> counts_;
  u64 total_count_ = 0;
  u64 total_sum_ = 0;
  u64 min_seen_;
  u64 max_seen_ = 0;
  u64 overflow_count_ = 0;
};

}  // namespace deepflow
