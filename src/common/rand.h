// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic decision in the simulators (service-time jitter, fault
// arrival, payload sizes) draws from an explicitly seeded Rng so that a whole
// experiment is reproducible from its seed. std::mt19937_64 is avoided for
// speed and state size; xoshiro256** has excellent statistical quality for
// simulation purposes.
#pragma once

#include <array>
#include <cmath>

#include "common/types.h"

namespace deepflow {

/// xoshiro256** generator with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(u64 seed) {
    u64 x = seed;
    for (auto& word : state_) {
      // splitmix64 step: decorrelates consecutive seeds.
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 below(u64 bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  u64 between(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (for Poisson
  /// arrival processes and memoryless service times).
  double exponential(double mean) {
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0) u = 1e-300;
    return -mean * std::log(u);
  }

  /// Log-normal-ish positive jitter around `mean` with modest dispersion,
  /// used for service-time variation where an exponential tail is too heavy.
  double jittered(double mean, double rel_stddev) {
    // Sum of three uniforms approximates a bell curve cheaply.
    const double g = (uniform() + uniform() + uniform()) / 1.5 - 1.0;  // ~[-1,1]
    double v = mean * (1.0 + g * rel_stddev);
    return v > 0.0 ? v : mean * 0.01;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace deepflow
