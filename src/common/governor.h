// ResourceGovernor: the overload control plane (ISSUE 9). Byte-accounts the
// major in-memory consumers (hot span store, metrics rollups, transport
// queues, interner, dedup seen-set, batch arenas) against a configurable
// budget and drives an adaptive degradation ladder when the budget is
// approached:
//
//   kNormal      -> everything at full fidelity
//   kSeal        -> force-seal hot segments into the warm (disk) tier
//   kDownsample  -> span-level tail sampling: anomalous traces (errors,
//                   incomplete sessions, RED-latency outliers) keep full
//                   fidelity, healthy traces are hash-downsampled; every
//                   decision lands in a per-window completeness ledger
//   kShed        -> transport-side priority shedding extends to net spans
//                   (the net>sys>app ladder's last protected class)
//   kRefuse      -> admission refusal: healthy batches bounce with a
//                   kOverloaded verdict (retry-after hint) so backpressure
//                   propagates agent-ward; anomalous spans are still admitted
//                   until the budget is fully exhausted
//
// Recovery walks the ladder back down one rung at a time with hysteresis
// (exit threshold = enter threshold - exit_hysteresis) so the ladder does
// not flap around a boundary.
//
// Accounting is strictly push-based: owners report byte deltas at mutation
// time (under their own locks), never probed, so the governor adds no racy
// cross-thread reads. All counters are atomics; `refresh()` is the only
// method that takes the (tiny) ladder mutex, and only on a level change.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace deepflow {

/// The accounts a governor tracks. Each maps to one owning subsystem; the
/// owner pushes deltas as it allocates/releases.
enum class GovernorAccount : u8 {
  kHotStore = 0,        ///< SpanStore hot-tier rows + encoded tag blobs.
  kUnflushedStore = 1,  ///< Hot rows not yet sealed to disk (overlay; subset
                        ///< of kHotStore, excluded from the total -- sealing
                        ///< reduces durability exposure, not RSS).
  kMetrics = 2,         ///< MetricsAggregator per-key histograms + rings.
  kTransportQueue = 3,  ///< SpanTransport queued/retrying/delayed spans.
  kInterner = 4,        ///< StringInterner backing payload + table.
  kDedup = 5,           ///< Idempotent-ingest seen-set entries.
  kArena = 6,           ///< Agent-side batch arena capacity.
  kAssembly = 7,        ///< Streaming trace assembler: open watermark-window
                        ///< state plus the materialized completed-trace index.
  kCount = 8,
};
constexpr size_t kGovernorAccounts =
    static_cast<size_t>(GovernorAccount::kCount);

/// Degradation ladder states, ordered by severity.
enum class OverloadLevel : u8 {
  kNormal = 0,
  kSeal = 1,
  kDownsample = 2,
  kShed = 3,
  kRefuse = 4,
};
constexpr size_t kOverloadLevels = 5;

const char* overload_level_name(OverloadLevel level);

struct GovernorConfig {
  /// Master switch. A disabled governor accounts nothing and every admission
  /// question answers "yes" -- the byte-identity contract of prior PRs.
  bool enabled = false;
  /// Total byte budget across all accounts (0 with enabled=true means
  /// "account but never degrade": telemetry-only mode).
  size_t budget_bytes = 0;
  /// Optional per-account ceilings (0 = governed only by the total). An
  /// account over its own ceiling drives the same ladder: pressure is the
  /// max of total-vs-budget and each account-vs-ceiling fraction.
  std::array<size_t, kGovernorAccounts> account_budget_bytes{};

  /// Ladder entry thresholds as fractions of budget. Must be increasing.
  double seal_enter = 0.70;
  double downsample_enter = 0.80;
  double shed_enter = 0.90;
  double refuse_enter = 0.97;
  /// A rung is exited only when pressure drops below enter - hysteresis,
  /// and only one rung per refresh -- no flapping, no cliff recovery.
  double exit_hysteresis = 0.05;

  /// Healthy-trace keep percentage at the moment kDownsample engages;
  /// degrades linearly to healthy_keep_min_pct as pressure approaches
  /// shed_enter. Anomalous traces always keep 100%.
  u32 healthy_keep_pct = 25;
  u32 healthy_keep_min_pct = 5;
  /// Seed folded into the admission hash so runs are deterministic but
  /// decorrelated from span-id assignment.
  u64 sample_seed = 0x9e3779b97f4a7c15ULL;

  /// Hint returned with kOverloaded refusals: how many transport ticks the
  /// sender should wait before retrying.
  u32 retry_after_ticks = 8;
  /// Force-seal at most once per this many admitted spans while at or above
  /// kSeal (sealing is O(shard) work; do not do it per span).
  u64 seal_interval_spans = 4096;

  /// Completeness-ledger window width and retention cap.
  DurationNs completeness_window_ns = kSecond;
  size_t completeness_max_windows = 4096;
  /// Anomalous-trace memory: two generations keyed to this window so the
  /// "rest of an anomalous trace stays sampled-in" memory is bounded.
  DurationNs anomaly_window_ns = 60 * kSecond;
};

/// One completeness-ledger window: what was offered to admission in
/// [window_start, window_start + window_ns) and what happened to it.
struct CompletenessWindow {
  TimestampNs window_start = 0;
  u64 offered = 0;      ///< spans that reached admission
  u64 stored = 0;       ///< admitted at full fidelity
  u64 downsampled = 0;  ///< healthy spans dropped by tail sampling
  u64 refused = 0;      ///< bounced with kOverloaded (will be retried)
  u64 anomalous_kept = 0;  ///< subset of stored kept by the anomaly rule
  /// stored / offered, 1.0 for an empty window.
  double completeness() const {
    return offered == 0 ? 1.0
                        : static_cast<double>(stored) /
                              static_cast<double>(offered);
  }
};

/// Bounded per-window bookkeeping of admission/sampling outcomes, extracted
/// from the governor so other subsystems (the streaming assembler's
/// trace-level tail sampler) can keep their own ledger even when no governor
/// is active. Thread-safe; windows are evicted oldest-first past max_windows.
/// The per-window invariant offered == stored + downsampled + refused holds
/// by construction: every note_* bumps offered alongside its outcome field.
class CompletenessLedger {
 public:
  CompletenessLedger() = default;
  CompletenessLedger(DurationNs window_ns, size_t max_windows);

  void note_stored(TimestampNs ts, u64 spans = 1);
  void note_anomalous_kept(TimestampNs ts, u64 spans = 1);
  void note_sampled_kept(TimestampNs ts, u64 spans = 1);
  void note_downsampled(TimestampNs ts, u64 spans = 1);
  void note_refused(TimestampNs ts, u64 spans = 1);
  /// Ledger windows overlapping [from, to), oldest first.
  std::vector<CompletenessWindow> windows(TimestampNs from,
                                          TimestampNs to) const;

 private:
  CompletenessWindow& window_locked(TimestampNs ts);

  DurationNs window_ns_ = kSecond;
  size_t max_windows_ = 4096;
  mutable std::mutex mu_;
  std::map<TimestampNs, CompletenessWindow> ledger_;
};

/// Sum `extra` into `base` window-by-window (union of window starts, counts
/// added field-wise), returning the merged view oldest first. Both sides must
/// use the same window width for starts to line up. Used by the server to
/// merge the governor's span-level ledger with the streaming assembler's
/// trace-level one in query_completeness.
std::vector<CompletenessWindow> merge_completeness_windows(
    std::vector<CompletenessWindow> base,
    const std::vector<CompletenessWindow>& extra);

struct GovernorTelemetry {
  bool active = false;
  OverloadLevel level = OverloadLevel::kNormal;
  size_t budget_bytes = 0;
  size_t total_bytes = 0;  ///< sum of accounts minus the kUnflushed overlay
  std::array<size_t, kGovernorAccounts> account_bytes{};
  u64 level_transitions = 0;
  std::array<u64, kOverloadLevels> level_entries{};
  u64 forced_seals = 0;
  u64 downsampled_spans = 0;
  u64 sampled_kept_spans = 0;
  u64 anomalous_kept_spans = 0;
  u64 refused_batches = 0;
  u64 refused_spans = 0;
  u64 shed_net_spans = 0;
};

class ResourceGovernor {
 public:
  ResourceGovernor() = default;
  explicit ResourceGovernor(GovernorConfig config);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  const GovernorConfig& config() const { return config_; }
  /// True when the governor both accounts and degrades. A constructed-but-
  /// inactive governor is free: every hook below early-returns.
  bool active() const { return config_.enabled && config_.budget_bytes > 0; }
  /// True when byte deltas are recorded (telemetry-only mode included).
  bool accounting() const { return config_.enabled; }

  // -- byte accounting (push-based; called by the owning subsystems) --------
  void add_bytes(GovernorAccount account, size_t bytes);
  void sub_bytes(GovernorAccount account, size_t bytes);
  size_t account_bytes(GovernorAccount account) const;
  /// Total governed bytes: all accounts except the kUnflushedStore overlay.
  size_t total_bytes() const;

  // -- ladder ---------------------------------------------------------------
  /// Current rung; lock-free, safe from any thread.
  OverloadLevel level() const {
    return static_cast<OverloadLevel>(level_.load(std::memory_order_relaxed));
  }
  /// Recompute pressure and walk the ladder (up instantly, down one rung
  /// with hysteresis). Returns the post-refresh level. Cheap when nothing
  /// changes: a couple of relaxed loads and one comparison.
  OverloadLevel refresh();
  /// Pressure as a fraction of budget (max over total and per-account
  /// ceilings); 0 when inactive.
  double pressure() const;

  // -- admission ------------------------------------------------------------
  /// Deterministic hash-based verdict for a *healthy* span keyed by its
  /// trace identity. Always true below kDownsample. The keep ratio adapts
  /// to pressure between healthy_keep_pct and healthy_keep_min_pct.
  bool admit_healthy(u64 trace_key);
  /// True once the budget is fully exhausted: even anomalous spans must be
  /// refused to honor the hard byte cap.
  bool exhausted() const;
  u32 retry_after_ticks() const { return config_.retry_after_ticks; }
  /// Rate-limiter for forced seals: true at most once per
  /// seal_interval_spans admitted spans while at or above kSeal.
  bool should_force_seal();

  // -- anomalous-trace memory ----------------------------------------------
  /// Remember that trace_key contained an anomalous span near ts, so later
  /// healthy spans of the same trace stay sampled-in (span-level tail
  /// sampling keeps whole anomalous traces coherent). Two generations keyed
  /// to anomaly_window_ns bound the memory.
  void mark_anomalous(u64 trace_key, TimestampNs ts);
  bool is_anomalous(u64 trace_key) const;

  // -- completeness ledger --------------------------------------------------
  void note_stored(TimestampNs ts, u64 spans = 1);
  void note_anomalous_kept(TimestampNs ts, u64 spans = 1);
  void note_sampled_kept(TimestampNs ts, u64 spans = 1);
  void note_downsampled(TimestampNs ts, u64 spans = 1);
  void note_refused(TimestampNs ts, u64 spans = 1);
  void note_refused_batch();
  void note_forced_seal();
  void note_shed_net(u64 spans = 1);
  /// Ledger windows overlapping [from, to), oldest first.
  std::vector<CompletenessWindow> completeness(TimestampNs from,
                                               TimestampNs to) const;

  GovernorTelemetry telemetry() const;

 private:
  double enter_threshold(OverloadLevel level) const;
  void refresh_keep_pct_locked(double pressure);

  GovernorConfig config_;

  std::array<std::atomic<size_t>, kGovernorAccounts> bytes_{};
  std::atomic<u8> level_{0};
  std::atomic<u32> keep_pct_{100};
  std::atomic<u64> spans_since_seal_{0};

  mutable std::mutex ladder_mu_;  ///< serializes level transitions only

  mutable std::mutex anomaly_mu_;
  u64 anomaly_generation_ = 0;
  std::unordered_set<u64> anomalous_cur_;
  std::unordered_set<u64> anomalous_prev_;

  CompletenessLedger ledger_;

  std::atomic<u64> level_transitions_{0};
  std::array<std::atomic<u64>, kOverloadLevels> level_entries_{};
  std::atomic<u64> forced_seals_{0};
  std::atomic<u64> downsampled_spans_{0};
  std::atomic<u64> sampled_kept_spans_{0};
  std::atomic<u64> anomalous_kept_spans_{0};
  std::atomic<u64> refused_batches_{0};
  std::atomic<u64> refused_spans_{0};
  std::atomic<u64> shed_net_spans_{0};
};

}  // namespace deepflow
