#include "common/interner.h"

namespace deepflow {

void StringInterner::set_max_entries(size_t max_entries) {
  std::unique_lock lk(mu_);
  max_entries_ = max_entries;
}

size_t StringInterner::max_entries() const {
  std::shared_lock lk(mu_);
  return max_entries_;
}

u64 StringInterner::overflow_count() const {
  return overflow_count_.load(std::memory_order_relaxed);
}

void StringInterner::set_governor(ResourceGovernor* governor) {
  std::unique_lock lk(mu_);
  if (governor_ != nullptr) {
    governor_->sub_bytes(GovernorAccount::kInterner,
                         payload_bytes_ + strings_.size() * (sizeof(u32) + 32));
  }
  governor_ = governor;
  if (governor_ != nullptr) {
    governor_->add_bytes(GovernorAccount::kInterner,
                         payload_bytes_ + strings_.size() * (sizeof(u32) + 32));
  }
}

u32 StringInterner::intern(std::string_view text) {
  {
    std::shared_lock lk(mu_);
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lk(mu_);
  // Double-check: another writer may have interned it between the locks.
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  if (max_entries_ != 0 && strings_.size() >= max_entries_) {
    // Cardinality cap: refuse the new entry; the caller falls back to its
    // per-batch arena copy (SpanBatch::intern_or_inline).
    overflow_count_.fetch_add(1, std::memory_order_relaxed);
    return kInvalidHandle;
  }
  const u32 handle = static_cast<u32>(strings_.size());
  strings_.emplace_back(text);
  ids_.emplace(std::string_view(strings_.back()), handle);
  payload_bytes_ += text.size();
  if (governor_ != nullptr) {
    governor_->add_bytes(GovernorAccount::kInterner,
                         text.size() + sizeof(u32) + 32);
  }
  return handle;
}

u32 StringInterner::find(std::string_view text) const {
  std::shared_lock lk(mu_);
  auto it = ids_.find(text);
  return it == ids_.end() ? kInvalidHandle : it->second;
}

std::string_view StringInterner::lookup(u32 handle) const {
  std::shared_lock lk(mu_);
  if (handle >= strings_.size()) return {};
  return std::string_view(strings_[handle]);
}

size_t StringInterner::size() const {
  std::shared_lock lk(mu_);
  return strings_.size();
}

size_t StringInterner::approx_bytes() const {
  std::shared_lock lk(mu_);
  // Payload plus the historical per-entry overhead estimate (hash node +
  // deque slot + id), kept identical to the pre-refactor encoder accounting
  // so dictionary-size telemetry doesn't jump across the change.
  return payload_bytes_ + strings_.size() * (sizeof(u32) + 32);
}

}  // namespace deepflow
