#include "common/interner.h"

namespace deepflow {

u32 StringInterner::intern(std::string_view text) {
  {
    std::shared_lock lk(mu_);
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lk(mu_);
  // Double-check: another writer may have interned it between the locks.
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const u32 handle = static_cast<u32>(strings_.size());
  strings_.emplace_back(text);
  ids_.emplace(std::string_view(strings_.back()), handle);
  payload_bytes_ += text.size();
  return handle;
}

u32 StringInterner::find(std::string_view text) const {
  std::shared_lock lk(mu_);
  auto it = ids_.find(text);
  return it == ids_.end() ? kInvalidHandle : it->second;
}

std::string_view StringInterner::lookup(u32 handle) const {
  std::shared_lock lk(mu_);
  if (handle >= strings_.size()) return {};
  return std::string_view(strings_[handle]);
}

size_t StringInterner::size() const {
  std::shared_lock lk(mu_);
  return strings_.size();
}

size_t StringInterner::approx_bytes() const {
  std::shared_lock lk(mu_);
  // Payload plus the historical per-entry overhead estimate (hash node +
  // deque slot + id), kept identical to the pre-refactor encoder accounting
  // so dictionary-size telemetry doesn't jump across the change.
  return payload_bytes_ + strings_.size() * (sizeof(u32) + 32);
}

}  // namespace deepflow
