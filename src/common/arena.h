// Bump-pointer arena for the zero-copy ingest hot path.
//
// A SpanBatch owns one of these for its high-cardinality string bytes
// (X-Request-IDs, third-party trace ids): every string is copied once into
// the arena when the span is appended, and from there travels by reference
// (StrRef = pointer + length into arena storage) through transport, dedup
// and the metrics fold until the store boundary materializes a row.
//
// Allocation model: blocks are carved off with a bump pointer; when the
// current block is exhausted a new one of twice the size is chained on
// (geometric growth bounds the block count at log2 of the peak). reset()
// rewinds the bump pointer but KEEPS every block, so a batch that is
// cleared and refilled each drain cycle reaches a steady state where
// filling it performs zero heap allocations — the property the
// allocation-regression suite pins.
//
// Pointer stability: blocks are never moved or freed before destruction /
// release(), so pointers handed out by alloc()/store() stay valid across
// later allocations (unlike a std::string/std::vector backing store). Not
// thread-safe; an arena belongs to exactly one batch at a time, and batches
// are single-writer by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace deepflow {

class Arena {
 public:
  static constexpr size_t kDefaultFirstBlockBytes = 16 * 1024;

  explicit Arena(size_t first_block_bytes = kDefaultFirstBlockBytes)
      : first_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bump allocation, aligned to `align` (power of two). The returned
  /// storage lives until release() or destruction; reset() recycles it for
  /// reuse but existing references become logically stale.
  void* alloc(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const size_t aligned = aligned_offset(b, align);
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        return b.data.get() + aligned;
      }
    }
    return alloc_slow(bytes, align);
  }

  /// Copy `text` into the arena and return a view of the stable copy.
  /// Empty strings return a static empty view without touching storage.
  std::string_view store(std::string_view text) {
    if (text.empty()) return {};
    char* dst = static_cast<char*>(alloc(text.size(), 1));
    std::memcpy(dst, text.data(), text.size());
    return std::string_view(dst, text.size());
  }

  /// Rewind every block for reuse. Capacity (and therefore steady-state
  /// zero-allocation refills) is retained; outstanding references into the
  /// arena must no longer be read.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
    block_ = 0;
  }

  /// Drop all blocks (frees memory, unlike reset()).
  void release() {
    blocks_.clear();
    block_ = 0;
  }

  /// Total bytes reserved across blocks.
  size_t capacity_bytes() const {
    size_t n = 0;
    for (const Block& b : blocks_) n += b.size;
    return n;
  }

  /// Bytes handed out since construction/reset (alignment padding included).
  size_t used_bytes() const {
    size_t n = 0;
    for (const Block& b : blocks_) n += b.used;
    return n;
  }

  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  // Bump offset that makes the returned *address* `align`-aligned. Aligning
  // the offset alone is wrong: operator new[] only guarantees
  // ~alignof(max_align_t), so a block base can itself be misaligned for
  // larger requests (e.g. cache-line allocations).
  static size_t aligned_offset(const Block& b, size_t align) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t addr =
        (base + b.used + (align - 1)) & ~(std::uintptr_t{align} - 1);
    return static_cast<size_t>(addr - base);
  }

  void* alloc_slow(size_t bytes, size_t align) {
    // Advance through retained blocks (after reset()) until one fits; chain
    // a new block — big enough even for an oversized request — otherwise.
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const size_t aligned = aligned_offset(b, align);
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++block_;
    }
    size_t next_size =
        blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
    if (next_size < bytes + align) next_size = bytes + align;
    Block b;
    b.data = std::make_unique<char[]>(next_size);
    b.size = next_size;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    Block& nb = blocks_.back();
    const size_t aligned = aligned_offset(nb, align);
    nb.used = aligned + bytes;
    return nb.data.get() + aligned;
  }

  std::vector<Block> blocks_;
  size_t block_ = 0;  // index of the block the bump pointer is in
  size_t first_block_bytes_;
};

}  // namespace deepflow
