// Deterministic fault injection for the agent -> server pipeline.
//
// The paper's pipeline is built around lossy, disordered delivery: perf
// rings overflow under bursts (§3.2), stragglers fall out of the 60 s
// window (§3.3.1), and Algorithm 1 must assemble useful traces from
// whatever arrived. The FaultInjector gives every delivery hop a seeded,
// reproducible failure model to exercise that graceful degradation: a site
// consults the injector per unit of work and receives a decision — drop it,
// duplicate it, delay it (reordering), or corrupt its timestamps (clock
// skew).
//
// Determinism contract (the chaos suite depends on all three):
//   * each site draws from an independent RNG stream seeded from
//     (seed, site), so enabling faults at one site never perturbs the
//     decisions made at another;
//   * decide() consumes a FIXED number of draws per call regardless of the
//     configured probabilities or the outcome, so two runs that differ only
//     in probability values see nested outcomes — every unit dropped at
//     p=0.01 is also dropped at p=0.1 (monotone-degradation tests);
//   * with an all-zero profile decide() reports no faults, so a disabled
//     injector is an exact pass-through.
//
// Thread-safety: decide() takes a per-site mutex; distinct sites never
// contend. Counter snapshots are safe at any time.
#pragma once

#include <array>
#include <atomic>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "common/rand.h"
#include "common/types.h"

namespace deepflow {

/// A delivery hop that can consult the injector. One RNG stream, one
/// profile and one counter block per site.
enum class FaultSite : u8 {
  kPerfRingSubmit = 0,  // kernel -> agent: per-CPU perf-ring submit
  kTransportSend = 1,   // agent -> server: span-batch send
  kSegmentWrite = 2,    // server -> disk: sealed-segment write (media rot)
  kNodeCrash = 3,       // server process: per-tick crash draw (drop only)
  kLinkPartition = 4,   // agent <-> server link: batch/heartbeat partition
};
constexpr size_t kFaultSiteCount = 5;

/// Lane value selecting a site's shared (historical) stream. Callers that
/// exist in multiples — one transport per (agent, server) link in a
/// federated cluster — pass a real lane instead, giving every instance its
/// own draw schedule: creating or destroying one lane can never shift the
/// sequence another lane (or the shared stream) sees.
constexpr u64 kFaultSharedLane = ~u64{0};

std::string_view fault_site_name(FaultSite site);

/// Per-site fault probabilities. All zero (the default) = perfect hop.
struct FaultProfile {
  double drop = 0.0;        // unit is lost
  double duplicate = 0.0;   // unit is delivered twice
  double delay = 0.0;       // unit is held back (reordered past later units)
  double corrupt_ts = 0.0;  // unit's timestamps are skewed (clock fault)
  u32 max_delay_ticks = 4;        // delay drawn uniformly from [1, max]
  i64 max_ts_skew_ns = 1000000;   // skew drawn uniformly from [-max, +max]
  /// Media-byte corruption probability, consulted through media_fault()
  /// (never decide()): a hit flips bits at one offset of the written image.
  double media_corrupt = 0.0;

  bool any() const {
    return drop > 0 || duplicate > 0 || delay > 0 || corrupt_ts > 0 ||
           media_corrupt > 0;
  }
};

/// Which fault kinds a site can physically apply (a perf ring cannot delay
/// a record past later ones, a generic channel can). Unsupported kinds are
/// never reported applied — but their RNG draws still happen, keeping the
/// stream stable across sites with different capabilities.
enum FaultKindMask : u8 {
  kFaultDrop = 1 << 0,
  kFaultDuplicate = 1 << 1,
  kFaultDelay = 1 << 2,
  kFaultCorruptTs = 1 << 3,
  kFaultAll = kFaultDrop | kFaultDuplicate | kFaultDelay | kFaultCorruptTs,
};

/// One consultation's outcome. Drop excludes the others; duplicate, delay
/// and timestamp skew can co-occur (a delayed batch may also be skewed).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  u32 delay_ticks = 0;  // 0 = deliver now
  i64 ts_skew_ns = 0;   // 0 = clocks honest

  bool faulted() const {
    return drop || duplicate || delay_ticks != 0 || ts_skew_ns != 0;
  }
};

/// Injected-fault counters, per site (monotonic since construction).
struct FaultSiteCounters {
  u64 consults = 0;
  u64 drops = 0;
  u64 duplicates = 0;
  u64 delays = 0;
  u64 ts_corruptions = 0;
  u64 media_corruptions = 0;
};

/// A media-rot event for one written image: XOR `xor_mask` into the byte at
/// `offset`. `xor_mask` is never zero on a hit, so a reported fault always
/// changes the bytes.
struct MediaFault {
  bool corrupt = false;
  u64 offset = 0;
  u8 xor_mask = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(u64 seed = 1);

  /// Install `profile` at `site` (replaces the previous profile).
  void configure(FaultSite site, const FaultProfile& profile);

  /// True when any probability at `site` is non-zero. Sites use this to
  /// skip the consult (and the mutex) on the hot path when faults are off.
  bool enabled(FaultSite site) const;

  /// Draw one decision for a unit of work at `site`. `supported` masks the
  /// kinds the caller can apply; unsupported kinds are reported clean and
  /// not counted, but their draws are still consumed (stream stability).
  /// `lane` selects an independent per-(site, lane) stream; the default is
  /// the site's shared stream (see kFaultSharedLane). All lanes of a site
  /// share its profile and counters — only the RNG stream is per-lane.
  FaultDecision decide(FaultSite site, u8 supported = kFaultAll,
                       u64 lane = kFaultSharedLane);

  /// Draw one media-rot decision for an image of `len` bytes about to hit
  /// stable storage. Separate from decide() — its own fixed 3-draw schedule
  /// on the site's stream, so storage consults never shift the decision
  /// sequence of the delivery sites (and vice versa: distinct sites,
  /// distinct streams).
  MediaFault media_fault(FaultSite site, u64 len);

  FaultSiteCounters counters(FaultSite site) const;

 private:
  struct Site {
    Site() : rng(0) {}
    mutable std::mutex mu;
    Rng rng;
    // Lazily created per-lane streams (decide with lane != shared). Seeded
    // from (seed, site, lane), so which lanes exist — and in what order
    // they first consult — cannot perturb any other stream.
    std::unordered_map<u64, Rng> lanes;
    FaultProfile profile;
    FaultSiteCounters counters;
    // Cached profile.any(); atomic so the hot-path enabled() check needs no
    // lock even if configure() races a running pipeline.
    std::atomic<bool> enabled{false};
  };

  Rng& lane_rng(Site& site, size_t site_index, u64 lane);

  u64 seed_;
  std::array<Site, kFaultSiteCount> sites_;
};

}  // namespace deepflow
