#include "common/fault.h"

#include "common/hash.h"

namespace deepflow {

std::string_view fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kPerfRingSubmit:
      return "perf-ring-submit";
    case FaultSite::kTransportSend:
      return "transport-send";
    case FaultSite::kSegmentWrite:
      return "segment-write";
    case FaultSite::kNodeCrash:
      return "node-crash";
    case FaultSite::kLinkPartition:
      return "link-partition";
  }
  return "unknown";
}

FaultInjector::FaultInjector(u64 seed) : seed_(seed) {
  for (size_t i = 0; i < sites_.size(); ++i) {
    // Independent stream per site: mixing the site index in keeps one
    // site's consumption from shifting another site's sequence.
    sites_[i].rng = Rng(mix64(seed ^ (0x8000000000000000ULL | (i + 1))));
  }
}

void FaultInjector::configure(FaultSite site, const FaultProfile& profile) {
  Site& s = sites_[static_cast<size_t>(site)];
  std::lock_guard lock(s.mu);
  s.profile = profile;
  s.enabled.store(profile.any(), std::memory_order_release);
}

bool FaultInjector::enabled(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].enabled.load(
      std::memory_order_acquire);
}

Rng& FaultInjector::lane_rng(Site& site, size_t site_index, u64 lane) {
  if (lane == kFaultSharedLane) return site.rng;
  const auto it = site.lanes.find(lane);
  if (it != site.lanes.end()) return it->second;
  // Independent stream per (seed, site, lane): the lane index is mixed
  // separately from the site tag so lane streams collide with neither the
  // shared site streams nor each other.
  const u64 lane_seed =
      mix64(seed_ ^ (0x4000000000000000ULL | (site_index + 1))) ^
      mix64(lane + 0x9e3779b97f4a7c15ULL);
  return site.lanes.emplace(lane, Rng(lane_seed)).first->second;
}

FaultDecision FaultInjector::decide(FaultSite site, u8 supported, u64 lane) {
  Site& s = sites_[static_cast<size_t>(site)];
  std::lock_guard lock(s.mu);
  ++s.counters.consults;
  Rng& rng = lane_rng(s, static_cast<size_t>(site), lane);

  // Fixed draw schedule — four Bernoulli draws plus the delay and skew
  // magnitudes, consumed on every consult no matter the profile or the
  // outcome. This is what makes fault sets nested across probability
  // sweeps (see the header's determinism contract).
  const bool hit_drop = rng.chance(s.profile.drop);
  const bool hit_dup = rng.chance(s.profile.duplicate);
  const bool hit_delay = rng.chance(s.profile.delay);
  const bool hit_skew = rng.chance(s.profile.corrupt_ts);
  const u32 delay_ticks = static_cast<u32>(
      rng.between(1, s.profile.max_delay_ticks > 0
                           ? s.profile.max_delay_ticks
                           : 1));
  const i64 max_skew =
      s.profile.max_ts_skew_ns > 0 ? s.profile.max_ts_skew_ns : 1;
  const i64 skew_ns = static_cast<i64>(rng.between(
                          0, static_cast<u64>(2 * max_skew))) -
                      max_skew;

  FaultDecision decision;
  if (hit_drop && (supported & kFaultDrop) != 0) {
    decision.drop = true;
    ++s.counters.drops;
    return decision;  // a dropped unit has no other fate
  }
  if (hit_dup && (supported & kFaultDuplicate) != 0) {
    decision.duplicate = true;
    ++s.counters.duplicates;
  }
  if (hit_delay && (supported & kFaultDelay) != 0) {
    decision.delay_ticks = delay_ticks;
    ++s.counters.delays;
  }
  if (hit_skew && (supported & kFaultCorruptTs) != 0) {
    decision.ts_skew_ns = skew_ns;
    ++s.counters.ts_corruptions;
  }
  return decision;
}

MediaFault FaultInjector::media_fault(FaultSite site, u64 len) {
  Site& s = sites_[static_cast<size_t>(site)];
  std::lock_guard lock(s.mu);
  ++s.counters.consults;

  // Fixed 3-draw schedule (hit, offset, mask) regardless of outcome, for
  // the same nested-fault-set property decide() guarantees.
  const bool hit = s.rng.chance(s.profile.media_corrupt);
  const u64 offset = s.rng.below(len > 0 ? len : 1);
  const u8 mask = static_cast<u8>(s.rng.between(1, 255));

  MediaFault fault;
  if (hit && len > 0) {
    fault.corrupt = true;
    fault.offset = offset;
    fault.xor_mask = mask;
    ++s.counters.media_corruptions;
  }
  return fault;
}

FaultSiteCounters FaultInjector::counters(FaultSite site) const {
  const Site& s = sites_[static_cast<size_t>(site)];
  std::lock_guard lock(s.mu);
  return s.counters;
}

}  // namespace deepflow
