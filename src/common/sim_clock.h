// Discrete-event simulation core: a virtual clock plus a time-ordered event
// queue. All simulators (kernel, network, workloads) share one EventLoop per
// experiment so that cross-machine causality is globally ordered.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace deepflow {

/// A deterministic discrete-event loop. Events scheduled for the same
/// timestamp run in scheduling order (stable FIFO tie-break), which keeps
/// experiments reproducible across runs and platforms.
class EventLoop {
 public:
  using Action = std::function<void()>;

  TimestampNs now() const { return now_; }

  /// Schedule `action` to run at absolute simulated time `at` (clamped to
  /// now() if in the past).
  void schedule_at(TimestampNs at, Action action) {
    if (at < now_) at = now_;
    queue_.push(Event{at, next_seq_++, std::move(action)});
  }

  /// Schedule `action` to run `delay` ns from now.
  void schedule_after(DurationNs delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  bool has_pending() const { return !queue_.empty(); }
  size_t pending_count() const { return queue_.size(); }

  /// Run a single event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // priority_queue::top returns const&; the event is copied out so the
    // action can schedule further events safely while we pop.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.action();
    return true;
  }

  /// Run until the queue drains or the clock passes `until` (whichever comes
  /// first). Events stamped after `until` remain queued.
  void run_until(TimestampNs until) {
    while (!queue_.empty() && queue_.top().at <= until) step();
    if (now_ < until) now_ = until;
  }

  /// Run until no events remain.
  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    TimestampNs at;
    u64 seq;
    Action action;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  TimestampNs now_ = 0;
  u64 next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace deepflow
