// Multi-producer/single-consumer staging built as a per-producer array of
// the existing SPSC rings: producer i owns lane i exclusively, so every
// lane keeps the lock-free SPSC fast path, and the single consumer drains
// lanes round-robin. This is how the agent's parallel drain workers hand
// parsed-message batches to the serial aggregation stage without locks.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/spsc_ring.h"

namespace deepflow {

template <typename T>
class MpscRingArray {
 public:
  MpscRingArray(size_t producers, size_t per_producer_capacity) {
    lanes_.reserve(producers == 0 ? 1 : producers);
    for (size_t i = 0; i < (producers == 0 ? 1 : producers); ++i) {
      lanes_.push_back(std::make_unique<SpscRing<T>>(per_producer_capacity));
    }
  }

  size_t producer_count() const { return lanes_.size(); }
  size_t lane_capacity() const { return lanes_[0]->capacity(); }

  /// Producer side: only producer `producer` may call this for its lane.
  /// Returns false (and counts a drop on the lane) when the lane is full.
  bool push(size_t producer, T item) {
    return lanes_[producer]->push(std::move(item));
  }

  /// Producer-side fullness probe: because the lane has exactly one
  /// producer, a false result guarantees the next push from that producer
  /// succeeds (the consumer only ever makes room).
  bool full(size_t producer) const {
    return lanes_[producer]->size() >= lanes_[producer]->capacity();
  }

  /// Consumer side: pop one item from one lane.
  std::optional<T> pop_from(size_t producer) { return lanes_[producer]->pop(); }

  /// Consumer side: drain up to `budget` items round-robin across lanes.
  template <typename Fn>
  size_t drain(size_t budget, Fn&& consume) {
    size_t drained = 0;
    bool any = true;
    while (drained < budget && any) {
      any = false;
      for (auto& lane : lanes_) {
        if (drained >= budget) break;
        if (auto item = lane->pop()) {
          consume(std::move(*item));
          ++drained;
          any = true;
        }
      }
    }
    return drained;
  }

  size_t pending() const {
    size_t n = 0;
    for (const auto& lane : lanes_) n += lane->size();
    return n;
  }

  /// Items rejected because a lane was full, across all lanes.
  u64 dropped() const {
    u64 n = 0;
    for (const auto& lane : lanes_) n += lane->dropped();
    return n;
  }

 private:
  // Lanes are individually heap-allocated, so each lane's padded cursors
  // (PaddedCursor in spsc_ring.h) land on distinct cache lines and no two
  // producers ever write the same line. The assert pins the lane type to the
  // padded layout so a future SpscRing edit can't silently undo it.
  static_assert(sizeof(PaddedCursor) == 64,
                "MPSC lanes rely on cache-line-padded SPSC cursors");
  std::vector<std::unique_ptr<SpscRing<T>>> lanes_;
};

}  // namespace deepflow
