// Time-window array for disorder-tolerant aggregation (§3.3.1).
//
// DeepFlow matches requests to responses even when multiple CPU cores deliver
// message data out of order. The paper's mechanism: slot messages into fixed
// duration time windows by timestamp and, when aggregating, only consult the
// same slot and its neighbours. Items older than the sliding horizon are
// evicted to the caller (in production they are re-aggregated on the server).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.h"

namespace deepflow {

/// A sliding array of time slots, each holding items of type T.
///
/// The window keeps `slot_count` slots of `slot_duration` each. Inserting an
/// item whose timestamp is older than the retained horizon fails (the caller
/// forwards such stragglers upstream, mirroring DeepFlow's upload of
/// out-of-window messages to the Server). Advancing time evicts expired slots
/// through the eviction callback.
template <typename T>
class TimeWindowArray {
 public:
  using EvictFn = std::function<void(T&&)>;

  TimeWindowArray(DurationNs slot_duration, size_t slot_count)
      : slot_duration_(slot_duration), slot_count_(slot_count) {}

  DurationNs slot_duration() const { return slot_duration_; }
  size_t slot_count() const { return slot_count_; }

  /// Total items currently retained.
  size_t size() const {
    size_t n = 0;
    for (const auto& s : slots_) n += s.items.size();
    return n;
  }

  /// Insert an item stamped `ts`. Returns false when ts falls before the
  /// retained horizon (item not inserted). Inserting a future timestamp
  /// advances the window, evicting expired slots via `evict`.
  bool insert(TimestampNs ts, T item, const EvictFn& evict) {
    const u64 slot = ts / slot_duration_;
    if (!slots_.empty() && slot < first_slot_) return false;
    advance_to(slot, evict);
    slots_[static_cast<size_t>(slot - first_slot_)].items.push_back(
        std::move(item));
    return true;
  }

  /// Slide the window forward so that `ts` is representable, evicting
  /// expired slots without inserting anything.
  void advance(TimestampNs ts, const EvictFn& evict) {
    advance_to(ts / slot_duration_, evict);
  }

  /// Visit every item in the slot containing `ts` and the two adjacent slots
  /// (the paper's "same time slot or next to it" rule). The visitor returns
  /// true to claim the item, which removes it from the window; visiting stops
  /// after the first claim. Returns the claimed item if any.
  std::optional<T> claim_nearby(TimestampNs ts,
                                const std::function<bool(const T&)>& match) {
    if (slots_.empty()) return std::nullopt;
    const u64 slot = ts / slot_duration_;
    // Older slot first: for pipeline protocols the oldest staged message
    // must match first (FIFO pairing).
    for (const i64 delta : {i64{-1}, i64{0}, i64{1}}) {
      const i64 want = static_cast<i64>(slot) + delta;
      if (want < static_cast<i64>(first_slot_)) continue;
      const u64 index = static_cast<u64>(want) - first_slot_;
      if (index >= slots_.size()) continue;
      auto& items = slots_[static_cast<size_t>(index)].items;
      for (auto it = items.begin(); it != items.end(); ++it) {
        if (match(*it)) {
          T claimed = std::move(*it);
          items.erase(it);
          return claimed;
        }
      }
    }
    return std::nullopt;
  }

  /// Evict everything (end-of-run flush), oldest slots first.
  void flush(const EvictFn& evict) {
    for (auto& slot : slots_) {
      for (auto& item : slot.items) evict(std::move(item));
      slot.items.clear();
    }
    slots_.clear();
  }

 private:
  struct Slot {
    std::vector<T> items;
  };

  void advance_to(u64 slot, const EvictFn& evict) {
    if (slots_.empty()) {
      first_slot_ = slot >= slot_count_ - 1 ? slot - (slot_count_ - 1) : 0;
      slots_.resize(static_cast<size_t>(slot - first_slot_) + 1);
      return;
    }
    const u64 last_slot = first_slot_ + slots_.size() - 1;
    if (slot <= last_slot) return;
    // Grow forward, evicting slots that fall off the back of the horizon.
    for (u64 s = last_slot + 1; s <= slot; ++s) {
      slots_.emplace_back();
      if (slots_.size() > slot_count_) {
        for (auto& item : slots_.front().items) evict(std::move(item));
        slots_.pop_front();
        ++first_slot_;
      }
    }
  }

  DurationNs slot_duration_;
  size_t slot_count_;
  u64 first_slot_ = 0;
  std::deque<Slot> slots_;
};

}  // namespace deepflow
