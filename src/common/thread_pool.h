// Fixed-size worker pool for the parallel ingest pipeline: the agent's
// per-CPU drain workers and the benches' multi-threaded span ingestion run
// on one of these. Deliberately minimal — bounded thread count chosen at
// construction, a FIFO task queue, and a quiescence barrier (wait_idle) the
// pipeline uses to separate the parallel parse stage from the serial
// aggregation stage.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace deepflow {

class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1) that live until destruction.
  explicit ThreadPool(size_t threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task. Safe to call from pool workers (tasks may fan out).
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Run fn(0), ..., fn(n-1) across the pool and block until all complete.
  /// The pool must be idle (no unrelated tasks in flight) for the
  /// completion count to be meaningful.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  u64 tasks_completed() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers sleep here awaiting tasks
  std::condition_variable idle_cv_;  // wait_idle sleeps here
  size_t active_ = 0;                // tasks currently executing
  u64 completed_ = 0;
  bool stop_ = false;
};

}  // namespace deepflow
