// Multi-resolution time-series rollups for the streaming metrics plane.
//
// Each metric key (a service, or a client->server edge) owns one
// MultiResolutionSeries: a small fixed set of ring buffers at increasing
// bucket widths (1 s -> 10 s -> 60 s by default). Samples are folded
// *write-through*: every sample lands in the covering bucket of every
// resolution at record time, so "rolling up" a closing fine bucket into the
// coarse level needs no recomputation — closing a window is pure eviction.
// That choice is what makes window closing deterministic: the retained
// bucket range of a ring depends only on the maximum simulated timestamp
// seen (max is commutative), never on arrival order, so the serial and the
// 8-worker parallel ingest pipelines produce byte-identical series for the
// same span stream.
//
// Memory is bounded by construction: slots * levels buckets per key,
// regardless of how long the stream runs. Samples older than a ring's
// retained horizon are counted as late (they still fold into every coarser
// ring that covers them, and into the all-time totals kept by the owning
// accumulator). Late classification is the one arrival-order-sensitive
// decision; it can only trigger when one key's samples spread wider than
// the retention horizon, which the equivalence tests pin at zero.
//
// Timestamps are simulated-clock nanoseconds (the SimClock/EventLoop
// domain): deterministic workload runs close deterministic windows.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "common/types.h"

namespace deepflow::metrics {

/// One aggregation window of one key: scalar RED counters plus the
/// network-side counters folded from net spans. All folds are commutative
/// (sums, min, max), so bucket content is independent of arrival order.
struct MetricsBucket {
  TimestampNs bucket_start = 0;  // inclusive; width comes from the ring level
  u64 requests = 0;
  u64 errors = 0;        // sessions with ok == false
  u64 incomplete = 0;    // sessions that never saw a response
  DurationNs duration_sum = 0;
  DurationNs duration_min = ~DurationNs{0};  // meaningful only if requests > 0
  DurationNs duration_max = 0;
  u64 net_frames = 0;    // net-span observations (device-tap sightings)

  bool empty() const { return requests == 0 && net_frames == 0; }

  void add_request(DurationNs duration, bool ok, bool was_incomplete) {
    ++requests;
    if (!ok) ++errors;
    if (was_incomplete) ++incomplete;
    duration_sum += duration;
    duration_min = std::min(duration_min, duration);
    duration_max = std::max(duration_max, duration);
  }

  void add_net_frame() { ++net_frames; }

  void merge(const MetricsBucket& other) {
    requests += other.requests;
    errors += other.errors;
    incomplete += other.incomplete;
    duration_sum += other.duration_sum;
    duration_min = std::min(duration_min, other.duration_min);
    duration_max = std::max(duration_max, other.duration_max);
    net_frames += other.net_frames;
  }
};

/// Ring sizing per resolution level. Defaults retain 2 minutes at 1 s,
/// 16 minutes at 10 s and one hour at 60 s — per key, per level, a fixed
/// `slots` buckets of a few dozen bytes each.
struct RollupConfig {
  struct Level {
    DurationNs width = kSecond;
    size_t slots = 120;
  };
  std::array<Level, 3> levels{{{1 * kSecond, 120},
                               {10 * kSecond, 96},
                               {60 * kSecond, 60}}};
};

/// Fixed-size bucket rings at every configured resolution, write-through.
class MultiResolutionSeries {
 public:
  explicit MultiResolutionSeries(const RollupConfig& config = {}) {
    for (const RollupConfig::Level& level : config.levels) {
      rings_.push_back(Ring{level.width, {}, 0, false, 0});
      rings_.back().slots.resize(std::max<size_t>(level.slots, 1));
    }
  }

  void record_request(TimestampNs ts, DurationNs duration, bool ok,
                      bool incomplete) {
    for (Ring& ring : rings_) {
      if (MetricsBucket* bucket = ring.bucket_for(ts)) {
        bucket->add_request(duration, ok, incomplete);
      }
    }
  }

  void record_net_frame(TimestampNs ts) {
    for (Ring& ring : rings_) {
      if (MetricsBucket* bucket = ring.bucket_for(ts)) {
        bucket->add_net_frame();
      }
    }
  }

  /// Non-empty retained buckets whose window intersects [from, to], in
  /// ascending bucket_start order, at the level whose width best matches
  /// `resolution` (exact match, else the finest width >= resolution, else
  /// the coarsest level). Width of the chosen level is returned through
  /// `width_out` when non-null.
  std::vector<MetricsBucket> query(TimestampNs from, TimestampNs to,
                                   DurationNs resolution,
                                   DurationNs* width_out = nullptr) const {
    const Ring& ring = rings_[level_for(resolution)];
    if (width_out != nullptr) *width_out = ring.width;
    std::vector<MetricsBucket> out;
    if (!ring.any || from > to) return out;
    const u64 hi = std::min(ring.max_bucket, to / ring.width);
    const u64 retained_lo =
        ring.max_bucket >= ring.slots.size() - 1
            ? ring.max_bucket - (ring.slots.size() - 1)
            : 0;
    const u64 lo = std::max(retained_lo, from / ring.width);
    for (u64 b = lo; b <= hi; ++b) {
      const MetricsBucket& slot = ring.slots[b % ring.slots.size()];
      // Slots are lazily claimed on write; a slot still holding an evicted
      // (wrapped) bucket or never written at all fails the start check.
      if (!slot.empty() && slot.bucket_start == b * ring.width) {
        out.push_back(slot);
      }
    }
    return out;
  }

  /// Fold another series (same level layout) into this one — the federation
  /// query plane merges per-partition series with this. Retention-honoring
  /// and commutative: each ring's merged horizon is the max of the two max
  /// buckets, and source buckets behind it are dropped as late — exactly
  /// the retained state a single ring fed both sample streams would hold
  /// (byte-identical whenever neither input overflowed its horizon, the
  /// same contract the serial-vs-parallel equivalence suites pin).
  void merge(const MultiResolutionSeries& other) {
    for (size_t i = 0; i < rings_.size() && i < other.rings_.size(); ++i) {
      Ring& dst = rings_[i];
      const Ring& src = other.rings_[i];
      dst.late += src.late;
      if (!src.any || src.width != dst.width) continue;
      const u64 hi = src.max_bucket;
      const u64 lo = hi >= src.slots.size() - 1
                         ? hi - (src.slots.size() - 1)
                         : 0;
      for (u64 b = lo; b <= hi; ++b) {
        const MetricsBucket& slot = src.slots[b % src.slots.size()];
        if (slot.empty() || slot.bucket_start != b * src.width) continue;
        if (MetricsBucket* bucket = dst.bucket_for(slot.bucket_start)) {
          bucket->merge(slot);
        }
      }
    }
  }

  /// Samples that arrived behind every ring's retained horizon at the given
  /// level (still folded into coarser levels and all-time totals).
  u64 late_samples(size_t level) const {
    return level < rings_.size() ? rings_[level].late : 0;
  }
  u64 late_samples_total() const {
    u64 n = 0;
    for (const Ring& ring : rings_) n += ring.late;
    return n;
  }

  size_t level_count() const { return rings_.size(); }
  DurationNs level_width(size_t level) const { return rings_[level].width; }

  /// Approximate resident bytes (overload-governor accounting).
  size_t approx_bytes() const {
    size_t bytes = sizeof(MultiResolutionSeries);
    for (const Ring& ring : rings_) {
      bytes += sizeof(Ring) + ring.slots.size() * sizeof(MetricsBucket);
    }
    return bytes;
  }

 private:
  struct Ring {
    DurationNs width;
    std::vector<MetricsBucket> slots;
    u64 max_bucket;  // highest bucket index seen (valid when any)
    bool any;
    u64 late;

    /// The slot covering `ts`, claimed/reset as needed; nullptr when ts is
    /// behind the retained horizon (counted late).
    MetricsBucket* bucket_for(TimestampNs ts) {
      const u64 bucket = ts / width;
      if (!any) {
        any = true;
        max_bucket = bucket;
      } else if (bucket > max_bucket) {
        max_bucket = bucket;
      } else if (max_bucket >= slots.size() &&
                 bucket < max_bucket - (slots.size() - 1)) {
        ++late;
        return nullptr;
      }
      MetricsBucket& slot = slots[bucket % slots.size()];
      if (slot.bucket_start != bucket * width || slot.empty()) {
        // First write into this window (or the slot still holds a long
        // evicted wrapped window): claim it fresh.
        if (slot.bucket_start != bucket * width) slot = MetricsBucket{};
        slot.bucket_start = bucket * width;
      }
      return &slot;
    }
  };

  size_t level_for(DurationNs resolution) const {
    for (size_t i = 0; i < rings_.size(); ++i) {
      if (rings_[i].width >= resolution) return i;
    }
    return rings_.size() - 1;
  }

  std::vector<Ring> rings_;
};

}  // namespace deepflow::metrics
