#include "metrics/aggregator.h"

#include <algorithm>
#include <cstdio>

namespace deepflow::metrics {

namespace {

void append_u64(std::string& out, const char* key, u64 value) {
  out += '|';
  out += key;
  out += '=';
  out += std::to_string(value);
}

void append_bucket(std::string& out, const MetricsBucket& bucket,
                   DurationNs width) {
  append_u64(out, "w", width);
  append_u64(out, "t", bucket.bucket_start);
  append_u64(out, "req", bucket.requests);
  append_u64(out, "err", bucket.errors);
  append_u64(out, "inc", bucket.incomplete);
  append_u64(out, "dsum", bucket.duration_sum);
  append_u64(out, "dmin", bucket.requests ? bucket.duration_min : 0);
  append_u64(out, "dmax", bucket.duration_max);
  append_u64(out, "net", bucket.net_frames);
}

}  // namespace

// ---------------------------------------------------------- ServiceMap ----

std::string ServiceMap::canonical() const {
  std::string out;
  out.reserve(nodes.size() * 96 + edges.size() * 128);
  for (const ServiceMapNode& node : nodes) {
    out += "svc|" + node.name;
    append_u64(out, "req", node.red.requests);
    append_u64(out, "err", node.red.errors);
    append_u64(out, "inc", node.red.incomplete);
    append_u64(out, "dsum", node.red.duration_sum);
    append_u64(out, "p50", node.red.p50);
    append_u64(out, "p90", node.red.p90);
    append_u64(out, "p99", node.red.p99);
    append_u64(out, "app", node.app_spans);
    out += '\n';
  }
  for (const ServiceMapEdge& edge : edges) {
    out += "edge|" + edge.client + "->" + edge.server;
    append_u64(out, "req", edge.red.requests);
    append_u64(out, "err", edge.red.errors);
    append_u64(out, "inc", edge.red.incomplete);
    append_u64(out, "dsum", edge.red.duration_sum);
    append_u64(out, "p50", edge.red.p50);
    append_u64(out, "p90", edge.red.p90);
    append_u64(out, "p99", edge.red.p99);
    append_u64(out, "net", edge.net_frames);
    append_u64(out, "bytes", edge.bytes);
    append_u64(out, "pkts", edge.packets);
    append_u64(out, "rx", edge.retransmissions);
    append_u64(out, "rst", edge.resets);
    out += '\n';
  }
  return out;
}

std::string ServiceMap::render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-20s %8s %6s %9s %9s %9s\n", "service",
                "req", "err%", "mean", "p50", "p99");
  out += buf;
  for (const ServiceMapNode& node : nodes) {
    std::snprintf(buf, sizeof buf,
                  "%-20s %8llu %5.1f%% %7.2fms %7.2fms %7.2fms\n",
                  node.name.c_str(),
                  static_cast<unsigned long long>(node.red.requests),
                  100.0 * node.red.error_rate(),
                  static_cast<double>(node.red.mean()) / 1e6,
                  static_cast<double>(node.red.p50) / 1e6,
                  static_cast<double>(node.red.p99) / 1e6);
    out += buf;
  }
  out += '\n';
  std::snprintf(buf, sizeof buf, "%-34s %8s %6s %9s %7s %10s %6s\n",
                "edge (client -> server)", "req", "err%", "p50", "frames",
                "bytes", "retx");
  out += buf;
  for (const ServiceMapEdge& edge : edges) {
    const std::string label = edge.client + " -> " + edge.server;
    std::snprintf(buf, sizeof buf,
                  "%-34s %8llu %5.1f%% %7.2fms %7llu %10llu %6llu\n",
                  label.c_str(),
                  static_cast<unsigned long long>(edge.red.requests),
                  100.0 * edge.red.error_rate(),
                  static_cast<double>(edge.red.p50) / 1e6,
                  static_cast<unsigned long long>(edge.net_frames),
                  static_cast<unsigned long long>(edge.bytes),
                  static_cast<unsigned long long>(edge.retransmissions));
    out += buf;
  }
  return out;
}

// ---------------------------------------------------- MetricsAggregator ----

MetricsAggregator::MetricsAggregator(const netsim::ResourceRegistry* registry,
                                     MetricsConfig config,
                                     ResourceGovernor* governor)
    : registry_(registry), governor_(governor), config_(config) {
  const size_t stripes = std::max<size_t>(config_.stripes, 1);
  config_.stripes = stripes;
  for (size_t i = 0; i < stripes; ++i) {
    service_stripes_.push_back(std::make_unique<ServiceStripe>());
    edge_stripes_.push_back(std::make_unique<EdgeStripe>());
    directory_stripes_.push_back(std::make_unique<DirectoryStripe>());
    name_stripes_.push_back(std::make_unique<NameCacheStripe>());
  }
}

void MetricsAggregator::account_new_service(const std::string& name,
                                            const ServiceStats& stats) const {
  if (governor_ == nullptr) return;
  governor_->add_bytes(GovernorAccount::kMetrics,
                       name.size() + sizeof(ServiceStats) + 64 +
                           stats.latency.approx_bytes() +
                           stats.series.approx_bytes());
}

void MetricsAggregator::account_new_edge(const EdgeKey& key,
                                         const EdgeStats& stats) const {
  if (governor_ == nullptr) return;
  governor_->add_bytes(GovernorAccount::kMetrics,
                       key.first.size() + key.second.size() +
                           sizeof(EdgeStats) + 64 +
                           stats.latency.approx_bytes() +
                           stats.series.approx_bytes());
}

void MetricsAggregator::account_new_flow(const FiveTuple& tuple,
                                         const EdgeKey& key) const {
  if (governor_ == nullptr) return;
  governor_->add_bytes(GovernorAccount::kMetrics,
                       sizeof(tuple) + key.first.size() + key.second.size() +
                           64);
}

std::string MetricsAggregator::resolve_name(u32 ip) const {
  const Ipv4 addr{ip};
  if (registry_ != nullptr) {
    const netsim::ResourceInfo info = registry_->resolve(addr);
    if (!info.service_name.empty()) return info.service_name;
    if (!info.pod_name.empty()) return info.pod_name;
    if (!info.node_name.empty()) return info.node_name;
  }
  return addr.to_string();
}

std::string MetricsAggregator::endpoint_name(u32 ip) const {
  NameCacheStripe& stripe = *name_stripes_[ip % config_.stripes];
  const u64 version = registry_ != nullptr ? registry_->version() : 0;
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.version != version) {
    stripe.names.clear();
    stripe.edges.clear();
    stripe.version = version;
  }
  const auto it = stripe.names.find(ip);
  if (it != stripe.names.end()) return it->second;
  return stripe.names.emplace(ip, resolve_name(ip)).first->second;
}

MetricsAggregator::EdgeKey MetricsAggregator::edge_key(u32 client_ip,
                                                       u32 server_ip) const {
  const u64 pair = (u64{client_ip} << 32) | server_ip;
  NameCacheStripe& stripe = *name_stripes_[pair % config_.stripes];
  const u64 version = registry_ != nullptr ? registry_->version() : 0;
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.version != version) {
    stripe.names.clear();
    stripe.edges.clear();
    stripe.version = version;
  }
  const auto it = stripe.edges.find(pair);
  if (it != stripe.edges.end()) return it->second;
  return stripe.edges
      .emplace(pair, EdgeKey{resolve_name(client_ip), resolve_name(server_ip)})
      .first->second;
}

MetricsAggregator::ServiceStripe& MetricsAggregator::service_stripe(
    const std::string& name) const {
  return *service_stripes_[std::hash<std::string>{}(name) % config_.stripes];
}

MetricsAggregator::EdgeStripe& MetricsAggregator::edge_stripe(
    const EdgeKey& key) const {
  return *edge_stripes_[EdgeKeyHash{}(key) % config_.stripes];
}

MetricsAggregator::DirectoryStripe& MetricsAggregator::directory_stripe(
    const FiveTuple& tuple) const {
  return *directory_stripes_[tuple.hash() % config_.stripes];
}

void MetricsAggregator::record_span(const agent::Span& span) {
  SpanSample sample;
  sample.kind = span.kind;
  sample.from_server_side = span.from_server_side;
  sample.ok = span.ok;
  sample.incomplete = span.incomplete;
  sample.client_ip = span.int_tags.client_ip;
  sample.server_ip = span.int_tags.server_ip;
  sample.start_ts = span.start_ts;
  sample.duration = span.duration();
  sample.tuple = span.tuple;
  record_sample(sample);
}

void MetricsAggregator::record_batch(const agent::SpanBatch& batch,
                                     const std::vector<u8>& skip) {
  if (!config_.enabled) return;
  const size_t n = batch.size();
  const auto& kinds = batch.kinds();
  const auto& starts = batch.start_ts();
  const auto& int_tags = batch.int_tags();
  const auto& tuples = batch.tuples();
  for (size_t i = 0; i < n; ++i) {
    if (i < skip.size() && skip[i] != 0) continue;
    SpanSample sample;
    sample.kind = kinds[i];
    sample.from_server_side = batch.from_server_side(i);
    sample.ok = batch.ok(i);
    sample.incomplete = batch.incomplete(i);
    sample.client_ip = int_tags[i].client_ip;
    sample.server_ip = int_tags[i].server_ip;
    sample.start_ts = starts[i];
    sample.duration = batch.duration(i);
    sample.tuple = tuples[i];
    record_sample(sample);
  }
}

void MetricsAggregator::record_sample(const SpanSample& span) {
  if (!config_.enabled) return;

  switch (span.kind) {
    case agent::SpanKind::kThirdParty:
      // The sys span of the same session carries the RED sample.
      third_party_spans_.fetch_add(1, std::memory_order_relaxed);
      return;
    case agent::SpanKind::kApplication: {
      // Uprobe (above-TLS) duplicate of a sys session: count per service,
      // do not RED-fold.
      const std::string service = endpoint_name(span.server_ip);
      ServiceStripe& stripe = service_stripe(service);
      std::lock_guard<std::mutex> lock(stripe.mu);
      ++stripe.app_spans;
      auto [it, inserted] = stripe.services.try_emplace(service, config_);
      if (inserted) account_new_service(service, it->second);
      ++it->second.app_spans;
      return;
    }
    case agent::SpanKind::kNetwork: {
      // Device-tap sighting: network evidence for the client->server edge.
      const EdgeKey key =
          edge_key(span.client_ip, span.server_ip);
      EdgeStripe& stripe = edge_stripe(key);
      std::lock_guard<std::mutex> lock(stripe.mu);
      ++stripe.net_frames;
      auto [it, inserted] = stripe.edges.try_emplace(key, config_);
      if (inserted) account_new_edge(key, it->second);
      ++it->second.net_frames;
      it->second.series.record_net_frame(span.start_ts);
      return;
    }
    case agent::SpanKind::kSystem:
      break;
  }

  const DurationNs duration = span.duration;
  if (span.from_server_side) {
    // The serving process's view: one request INTO this service.
    const std::string service = endpoint_name(span.server_ip);
    ServiceStripe& stripe = service_stripe(service);
    std::lock_guard<std::mutex> lock(stripe.mu);
    ++stripe.service_samples;
    auto [it, inserted] = stripe.services.try_emplace(service, config_);
    if (inserted) account_new_service(service, it->second);
    ServiceStats& stats = it->second;
    ++stats.requests;
    if (!span.ok) ++stats.errors;
    if (span.incomplete) ++stats.incomplete;
    stats.duration_sum += duration;
    stats.latency.record(duration);
    stats.series.record_request(span.start_ts, duration, span.ok,
                                span.incomplete);
  } else {
    // The calling process's view: one request along the client->server edge.
    const EdgeKey key =
        edge_key(span.client_ip, span.server_ip);
    {
      EdgeStripe& stripe = edge_stripe(key);
      std::lock_guard<std::mutex> lock(stripe.mu);
      ++stripe.edge_samples;
      auto [it, inserted] = stripe.edges.try_emplace(key, config_);
      if (inserted) account_new_edge(key, it->second);
      EdgeStats& stats = it->second;
      ++stats.requests;
      if (!span.ok) ++stats.errors;
      if (span.incomplete) ++stats.incomplete;
      stats.duration_sum += duration;
      stats.latency.record(duration);
      stats.series.record_request(span.start_ts, duration, span.ok,
                                  span.incomplete);
    }
    // Register the connection for later flow-record attribution. Idempotent:
    // every span of this connection derives the same directed pair.
    const FiveTuple canonical = span.tuple.canonical();
    DirectoryStripe& dir = directory_stripe(canonical);
    std::lock_guard<std::mutex> lock(dir.mu);
    if (dir.flows.try_emplace(canonical, key).second) {
      account_new_flow(canonical, key);
    }
  }
}

bool MetricsAggregator::is_latency_outlier(const SpanSample& sample) const {
  if (!config_.enabled) return false;
  if (sample.kind != agent::SpanKind::kSystem || !sample.from_server_side) {
    return false;
  }
  const std::string service = endpoint_name(sample.server_ip);
  ServiceStripe& stripe = service_stripe(service);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.services.find(service);
  if (it == stripe.services.end()) return false;
  const ServiceStats& stats = it->second;
  if (stats.requests < kOutlierMinSamples) return false;
  const DurationNs p99 = stats.latency.p99();
  return p99 > 0 && sample.duration >= p99;
}

void MetricsAggregator::record_flow(const FiveTuple& tuple,
                                    const netsim::FlowMetrics& flow) {
  if (!config_.enabled) return;
  const FiveTuple canonical = tuple.canonical();
  EdgeKey key;
  {
    DirectoryStripe& dir = directory_stripe(canonical);
    std::lock_guard<std::mutex> lock(dir.mu);
    const auto it = dir.flows.find(canonical);
    if (it == dir.flows.end()) {
      ++dir.flows_unattributed;
      return;
    }
    ++dir.flows_folded;
    key = it->second;
  }
  EdgeStripe& stripe = edge_stripe(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto [it, inserted] = stripe.edges.try_emplace(key, config_);
  if (inserted) account_new_edge(key, it->second);
  EdgeStats& stats = it->second;
  stats.flow_bytes += flow.bytes;
  stats.flow_packets += flow.packets;
  stats.flow_retransmissions += flow.retransmissions;
  stats.flow_resets += flow.resets;
  stats.flow_rtt_sum += flow.rtt_sum;
  stats.flow_rtt_samples += flow.rtt_samples;
}

void MetricsAggregator::merge_from(const MetricsAggregator& other) {
  if (&other == this) return;
  third_party_spans_.fetch_add(
      other.third_party_spans_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);

  for (size_t i = 0; i < other.service_stripes_.size(); ++i) {
    const ServiceStripe& src = *other.service_stripes_[i];
    std::lock_guard<std::mutex> src_lock(src.mu);
    {
      // Stripe tallies sum across stripes at telemetry time, so their
      // destination stripe is arbitrary — index-aligned keeps it stable.
      ServiceStripe& tally = *service_stripes_[i % config_.stripes];
      std::lock_guard<std::mutex> lock(tally.mu);
      tally.service_samples += src.service_samples;
      tally.app_spans += src.app_spans;
    }
    for (const auto& [name, stats] : src.services) {
      ServiceStripe& dst = service_stripe(name);
      std::lock_guard<std::mutex> lock(dst.mu);
      auto [it, inserted] = dst.services.try_emplace(name, config_);
      if (inserted) account_new_service(name, it->second);
      ServiceStats& d = it->second;
      d.requests += stats.requests;
      d.errors += stats.errors;
      d.incomplete += stats.incomplete;
      d.duration_sum += stats.duration_sum;
      d.latency.merge(stats.latency);
      d.app_spans += stats.app_spans;
      d.series.merge(stats.series);
    }
  }

  for (size_t i = 0; i < other.edge_stripes_.size(); ++i) {
    const EdgeStripe& src = *other.edge_stripes_[i];
    std::lock_guard<std::mutex> src_lock(src.mu);
    {
      EdgeStripe& tally = *edge_stripes_[i % config_.stripes];
      std::lock_guard<std::mutex> lock(tally.mu);
      tally.edge_samples += src.edge_samples;
      tally.net_frames += src.net_frames;
    }
    for (const auto& [key, stats] : src.edges) {
      EdgeStripe& dst = edge_stripe(key);
      std::lock_guard<std::mutex> lock(dst.mu);
      auto [it, inserted] = dst.edges.try_emplace(key, config_);
      if (inserted) account_new_edge(key, it->second);
      EdgeStats& d = it->second;
      d.requests += stats.requests;
      d.errors += stats.errors;
      d.incomplete += stats.incomplete;
      d.duration_sum += stats.duration_sum;
      d.latency.merge(stats.latency);
      d.net_frames += stats.net_frames;
      d.flow_bytes += stats.flow_bytes;
      d.flow_packets += stats.flow_packets;
      d.flow_retransmissions += stats.flow_retransmissions;
      d.flow_resets += stats.flow_resets;
      d.flow_rtt_sum += stats.flow_rtt_sum;
      d.flow_rtt_samples += stats.flow_rtt_samples;
      d.series.merge(stats.series);
    }
  }

  for (size_t i = 0; i < other.directory_stripes_.size(); ++i) {
    const DirectoryStripe& src = *other.directory_stripes_[i];
    std::lock_guard<std::mutex> src_lock(src.mu);
    {
      DirectoryStripe& tally = *directory_stripes_[i % config_.stripes];
      std::lock_guard<std::mutex> lock(tally.mu);
      tally.flows_folded += src.flows_folded;
      tally.flows_unattributed += src.flows_unattributed;
    }
    for (const auto& [tuple, key] : src.flows) {
      DirectoryStripe& dst = directory_stripe(tuple);
      std::lock_guard<std::mutex> lock(dst.mu);
      if (dst.flows.try_emplace(tuple, key).second) {
        account_new_flow(tuple, key);
      }
    }
  }
}

RedSummary MetricsAggregator::summarize(u64 requests, u64 errors,
                                        u64 incomplete, DurationNs duration_sum,
                                        const LatencyHistogram& latency) {
  RedSummary red;
  red.requests = requests;
  red.errors = errors;
  red.incomplete = incomplete;
  red.duration_sum = duration_sum;
  red.p50 = latency.p50();
  red.p90 = latency.p90();
  red.p99 = latency.p99();
  return red;
}

MetricsSeries MetricsAggregator::query_metrics(const std::string& service,
                                               TimestampNs from, TimestampNs to,
                                               DurationNs resolution) const {
  MetricsSeries out;
  out.key = service;
  ServiceStripe& stripe = service_stripe(service);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.services.find(service);
  if (it == stripe.services.end()) return out;
  out.found = true;
  out.buckets = it->second.series.query(from, to, resolution, &out.resolution);
  out.totals = summarize(it->second.requests, it->second.errors,
                         it->second.incomplete, it->second.duration_sum,
                         it->second.latency);
  return out;
}

MetricsSeries MetricsAggregator::query_edge_metrics(
    const std::string& client, const std::string& server, TimestampNs from,
    TimestampNs to, DurationNs resolution) const {
  MetricsSeries out;
  out.key = client + "->" + server;
  const EdgeKey key{client, server};
  EdgeStripe& stripe = edge_stripe(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.edges.find(key);
  if (it == stripe.edges.end()) return out;
  out.found = true;
  out.buckets = it->second.series.query(from, to, resolution, &out.resolution);
  out.totals = summarize(it->second.requests, it->second.errors,
                         it->second.incomplete, it->second.duration_sum,
                         it->second.latency);
  return out;
}

ServiceMap MetricsAggregator::service_map(TimestampNs from,
                                          TimestampNs to) const {
  const bool full_range = from == 0 && to == ~TimestampNs{0};
  ServiceMap map;

  for (const auto& stripe : service_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [name, stats] : stripe->services) {
      ServiceMapNode node;
      node.name = name;
      node.app_spans = stats.app_spans;
      node.red = summarize(stats.requests, stats.errors, stats.incomplete,
                           stats.duration_sum, stats.latency);
      if (!full_range) {
        // Windowed counts from the finest retained series; percentiles stay
        // all-time (scalar buckets cannot reconstruct a histogram).
        node.red.requests = 0;
        node.red.errors = 0;
        node.red.incomplete = 0;
        node.red.duration_sum = 0;
        for (const MetricsBucket& bucket :
             stats.series.query(from, to, kSecond)) {
          node.red.requests += bucket.requests;
          node.red.errors += bucket.errors;
          node.red.incomplete += bucket.incomplete;
          node.red.duration_sum += bucket.duration_sum;
        }
      }
      map.nodes.push_back(std::move(node));
    }
  }

  for (const auto& stripe : edge_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [key, stats] : stripe->edges) {
      ServiceMapEdge edge;
      edge.client = key.first;
      edge.server = key.second;
      edge.red = summarize(stats.requests, stats.errors, stats.incomplete,
                           stats.duration_sum, stats.latency);
      edge.net_frames = stats.net_frames;
      edge.bytes = stats.flow_bytes;
      edge.packets = stats.flow_packets;
      edge.retransmissions = stats.flow_retransmissions;
      edge.resets = stats.flow_resets;
      edge.rtt_sum = stats.flow_rtt_sum;
      edge.rtt_samples = stats.flow_rtt_samples;
      if (!full_range) {
        edge.red.requests = 0;
        edge.red.errors = 0;
        edge.red.incomplete = 0;
        edge.red.duration_sum = 0;
        edge.net_frames = 0;
        for (const MetricsBucket& bucket :
             stats.series.query(from, to, kSecond)) {
          edge.red.requests += bucket.requests;
          edge.red.errors += bucket.errors;
          edge.red.incomplete += bucket.incomplete;
          edge.red.duration_sum += bucket.duration_sum;
          edge.net_frames += bucket.net_frames;
        }
      }
      map.edges.push_back(std::move(edge));
    }
  }

  std::sort(map.nodes.begin(), map.nodes.end(),
            [](const ServiceMapNode& a, const ServiceMapNode& b) {
              return a.name < b.name;
            });
  std::sort(map.edges.begin(), map.edges.end(),
            [](const ServiceMapEdge& a, const ServiceMapEdge& b) {
              if (a.client != b.client) return a.client < b.client;
              return a.server < b.server;
            });
  return map;
}

std::string MetricsAggregator::canonical_metrics() const {
  // One line per accumulator totals + one line per retained non-empty
  // series bucket at every level, all sorted. Late-sample counters are
  // deliberately excluded: they are the one arrival-order-sensitive value
  // (see rollup.h) and belong in telemetry, not in the determinism surface.
  std::vector<std::string> lines;

  const auto series_lines = [&lines](const std::string& prefix,
                                     const MultiResolutionSeries& series) {
    for (size_t level = 0; level < series.level_count(); ++level) {
      const DurationNs width = series.level_width(level);
      for (const MetricsBucket& bucket :
           series.query(0, ~TimestampNs{0}, width)) {
        std::string line = prefix;
        append_bucket(line, bucket, width);
        lines.push_back(std::move(line));
      }
    }
  };

  for (const auto& stripe : service_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [name, stats] : stripe->services) {
      std::string line = "svc|" + name;
      append_u64(line, "req", stats.requests);
      append_u64(line, "err", stats.errors);
      append_u64(line, "inc", stats.incomplete);
      append_u64(line, "dsum", stats.duration_sum);
      append_u64(line, "p50", stats.latency.p50());
      append_u64(line, "p90", stats.latency.p90());
      append_u64(line, "p99", stats.latency.p99());
      append_u64(line, "app", stats.app_spans);
      lines.push_back(std::move(line));
      series_lines("svc-ts|" + name, stats.series);
    }
  }
  for (const auto& stripe : edge_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [key, stats] : stripe->edges) {
      const std::string label = key.first + "->" + key.second;
      std::string line = "edge|" + label;
      append_u64(line, "req", stats.requests);
      append_u64(line, "err", stats.errors);
      append_u64(line, "inc", stats.incomplete);
      append_u64(line, "dsum", stats.duration_sum);
      append_u64(line, "p50", stats.latency.p50());
      append_u64(line, "p90", stats.latency.p90());
      append_u64(line, "p99", stats.latency.p99());
      append_u64(line, "net", stats.net_frames);
      append_u64(line, "bytes", stats.flow_bytes);
      append_u64(line, "pkts", stats.flow_packets);
      append_u64(line, "rx", stats.flow_retransmissions);
      append_u64(line, "rst", stats.flow_resets);
      lines.push_back(std::move(line));
      series_lines("edge-ts|" + label, stats.series);
    }
  }

  std::sort(lines.begin(), lines.end());
  std::string out;
  out.reserve(lines.size() * 96);
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string MetricsAggregator::canonical_service_map() const {
  return service_map().canonical();
}

MetricsTelemetry MetricsAggregator::telemetry() const {
  MetricsTelemetry t;
  t.third_party_spans = third_party_spans_.load(std::memory_order_relaxed);
  for (const auto& stripe : service_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    t.service_samples += stripe->service_samples;
    t.app_spans += stripe->app_spans;
    t.services += stripe->services.size();
    for (const auto& [name, stats] : stripe->services) {
      t.late_samples += stats.series.late_samples_total();
    }
  }
  for (const auto& stripe : edge_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    t.edge_samples += stripe->edge_samples;
    t.net_frames += stripe->net_frames;
    t.edges += stripe->edges.size();
    for (const auto& [key, stats] : stripe->edges) {
      t.late_samples += stats.series.late_samples_total();
    }
  }
  for (const auto& stripe : directory_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    t.flows_folded += stripe->flows_folded;
    t.flows_unattributed += stripe->flows_unattributed;
  }
  // Every span lands in exactly one tally, so the call count is their sum.
  t.spans_seen = t.service_samples + t.edge_samples + t.net_frames +
                 t.app_spans + t.third_party_spans;
  return t;
}

}  // namespace deepflow::metrics
