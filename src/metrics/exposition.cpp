#include "metrics/exposition.h"

#include <cmath>
#include <cstdio>

namespace deepflow::metrics {

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void PrometheusWriter::family(const std::string& name, const std::string& type,
                              const std::string& help) {
  out_ += "# HELP " + name + ' ' + help + '\n';
  out_ += "# TYPE " + name + ' ' + type + '\n';
}

void PrometheusWriter::sample_prefix(const std::string& name,
                                     const Labels& labels) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += key + "=\"" + escape_label_value(value) + '"';
    }
    out_ += '}';
  }
  out_ += ' ';
}

void PrometheusWriter::sample(const std::string& name, const Labels& labels,
                              u64 value) {
  sample_prefix(name, labels);
  out_ += std::to_string(value);
  out_ += '\n';
}

void PrometheusWriter::sample(const std::string& name, const Labels& labels,
                              double value) {
  sample_prefix(name, labels);
  const double rounded = std::nearbyint(value);
  if (rounded == value && std::fabs(value) < 1e15) {
    out_ += std::to_string(static_cast<long long>(value));
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ += buf;
  }
  out_ += '\n';
}

void write_aggregator(PrometheusWriter& writer, const MetricsAggregator& agg) {
  // service_map() returns nodes/edges in sorted order, which fixes the
  // sample order inside each family; the family order is fixed below.
  const ServiceMap map = agg.service_map();

  writer.family("deepflow_service_requests_total", "counter",
                "Sessions served, per service (zero-code RED rate).");
  for (const ServiceMapNode& node : map.nodes) {
    writer.sample("deepflow_service_requests_total", {{"service", node.name}},
                  node.red.requests);
  }

  writer.family("deepflow_service_errors_total", "counter",
                "Sessions with an error status, per service.");
  for (const ServiceMapNode& node : map.nodes) {
    writer.sample("deepflow_service_errors_total", {{"service", node.name}},
                  node.red.errors);
  }

  writer.family("deepflow_service_incomplete_total", "counter",
                "Sessions that never saw a response, per service.");
  for (const ServiceMapNode& node : map.nodes) {
    writer.sample("deepflow_service_incomplete_total", {{"service", node.name}},
                  node.red.incomplete);
  }

  writer.family("deepflow_service_duration_ns_sum", "counter",
                "Summed session duration, per service (pair with requests "
                "for the mean).");
  for (const ServiceMapNode& node : map.nodes) {
    writer.sample("deepflow_service_duration_ns_sum", {{"service", node.name}},
                  node.red.duration_sum);
  }

  writer.family("deepflow_service_duration_ns", "gauge",
                "Session duration quantiles, per service.");
  for (const ServiceMapNode& node : map.nodes) {
    writer.sample("deepflow_service_duration_ns",
                  {{"service", node.name}, {"quantile", "0.5"}}, node.red.p50);
    writer.sample("deepflow_service_duration_ns",
                  {{"service", node.name}, {"quantile", "0.9"}}, node.red.p90);
    writer.sample("deepflow_service_duration_ns",
                  {{"service", node.name}, {"quantile", "0.99"}}, node.red.p99);
  }

  writer.family("deepflow_service_app_spans_total", "counter",
                "Application (uprobe) spans observed, per service.");
  for (const ServiceMapNode& node : map.nodes) {
    writer.sample("deepflow_service_app_spans_total", {{"service", node.name}},
                  node.app_spans);
  }

  const auto edge_labels = [](const ServiceMapEdge& edge) {
    return PrometheusWriter::Labels{{"client", edge.client},
                                    {"server", edge.server}};
  };

  writer.family("deepflow_edge_requests_total", "counter",
                "Sessions observed on each client->server call edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_requests_total", edge_labels(edge),
                  edge.red.requests);
  }

  writer.family("deepflow_edge_errors_total", "counter",
                "Error sessions on each call edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_errors_total", edge_labels(edge),
                  edge.red.errors);
  }

  writer.family("deepflow_edge_duration_ns", "gauge",
                "Client-observed session duration quantiles, per edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    auto labels = edge_labels(edge);
    labels.emplace_back("quantile", "0.5");
    writer.sample("deepflow_edge_duration_ns", labels, edge.red.p50);
    labels.back().second = "0.99";
    writer.sample("deepflow_edge_duration_ns", labels, edge.red.p99);
  }

  writer.family("deepflow_edge_net_frames_total", "counter",
                "Device-tap sightings (net spans) of each edge's sessions.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_net_frames_total", edge_labels(edge),
                  edge.net_frames);
  }

  writer.family("deepflow_edge_bytes_total", "counter",
                "Flow bytes attributed to each edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_bytes_total", edge_labels(edge), edge.bytes);
  }

  writer.family("deepflow_edge_packets_total", "counter",
                "Flow packets attributed to each edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_packets_total", edge_labels(edge),
                  edge.packets);
  }

  writer.family("deepflow_edge_retransmissions_total", "counter",
                "TCP-seq-derived retransmissions attributed to each edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_retransmissions_total", edge_labels(edge),
                  edge.retransmissions);
  }

  writer.family("deepflow_edge_resets_total", "counter",
                "TCP resets attributed to each edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_resets_total", edge_labels(edge), edge.resets);
  }

  writer.family("deepflow_edge_rtt_ns_avg", "gauge",
                "Mean network round-trip attributed to each edge.");
  for (const ServiceMapEdge& edge : map.edges) {
    writer.sample("deepflow_edge_rtt_ns_avg", edge_labels(edge),
                  edge.avg_transit());
  }

  write_metrics_telemetry(writer, agg.telemetry());
}

void write_metrics_telemetry(PrometheusWriter& writer,
                             const MetricsTelemetry& telemetry) {
  const std::pair<const char*, u64> gauges[] = {
      {"deepflow_metrics_spans_seen", telemetry.spans_seen},
      {"deepflow_metrics_service_samples", telemetry.service_samples},
      {"deepflow_metrics_edge_samples", telemetry.edge_samples},
      {"deepflow_metrics_net_frames", telemetry.net_frames},
      {"deepflow_metrics_app_spans", telemetry.app_spans},
      {"deepflow_metrics_third_party_spans", telemetry.third_party_spans},
      {"deepflow_metrics_flows_folded", telemetry.flows_folded},
      {"deepflow_metrics_flows_unattributed", telemetry.flows_unattributed},
      {"deepflow_metrics_late_samples", telemetry.late_samples},
      {"deepflow_metrics_services", telemetry.services},
      {"deepflow_metrics_edges", telemetry.edges},
  };
  for (const auto& [name, value] : gauges) {
    writer.family(name, "gauge", "Metrics-plane self-telemetry.");
    writer.sample(name, {}, value);
  }
}

std::string prometheus_text(const MetricsAggregator& agg) {
  PrometheusWriter writer;
  write_aggregator(writer, agg);
  return writer.str();
}

}  // namespace deepflow::metrics
