// Prometheus-style text exposition for the metrics plane (§3.4: DeepFlow
// exports both the auto-metrics and its own self-observability counters in
// the same format a stock scrape pipeline already understands).
//
// PrometheusWriter is a tiny composable text builder — the server uses it
// to append its IngestTelemetry/QueryTelemetry families after the
// aggregator families, without this library depending on the server.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "metrics/aggregator.h"

namespace deepflow::metrics {

/// Incremental builder for the Prometheus text exposition format
/// (`# HELP` / `# TYPE` headers + `family{label="value"} 123` samples).
/// Values are rendered as integers when integral, else shortest-form
/// doubles; label values are escaped per the format spec.
class PrometheusWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Starts a family: emits the HELP/TYPE header lines.
  void family(const std::string& name, const std::string& type,
              const std::string& help);

  /// One sample of the current (or any) family.
  void sample(const std::string& name, const Labels& labels, u64 value);
  void sample(const std::string& name, const Labels& labels, double value);

  const std::string& str() const { return out_; }

 private:
  void sample_prefix(const std::string& name, const Labels& labels);

  std::string out_;
};

/// Escapes a label value per the exposition format (backslash, quote, LF).
std::string escape_label_value(const std::string& value);

/// Renders every aggregator family — per-service and per-edge RED,
/// per-edge network counters, and the aggregator self-telemetry — in a
/// fixed family order with samples sorted by label, so output is
/// deterministic for a deterministic workload.
void write_aggregator(PrometheusWriter& writer, const MetricsAggregator& agg);

/// Aggregator self-telemetry only (spans seen, flows folded, late samples,
/// key cardinality), as `deepflow_metrics_*` gauges.
void write_metrics_telemetry(PrometheusWriter& writer,
                             const MetricsTelemetry& telemetry);

/// Convenience: full exposition of one aggregator (write_aggregator into a
/// fresh writer).
std::string prometheus_text(const MetricsAggregator& agg);

}  // namespace deepflow::metrics
