// Zero-code AutoMetrics: streaming RED metrics and the universal service
// map, derived from the same hook data as the tracing plane (§2-§3 of the
// paper: every spanned session doubles as a metric sample, so per-service
// and per-edge request/error/duration series need no SDK either).
//
// The MetricsAggregator sits on the server ingest path, BEFORE the span
// store: DeepFlowServer::ingest folds every deduplicated span into it.
// Folding rules (one session produces one sys span per side, so RED counts
// are session counts, not span counts):
//
//   sys span, server side   -> per-service accumulator keyed by the server
//                              endpoint (requests, errors, incomplete,
//                              latency histogram, time-series buckets)
//   sys span, client side   -> per-(client,server) edge accumulator (same
//                              RED shape) + the flow directory entry that
//                              later attributes network flow counters
//   net span                -> edge network-frame counter (device-tap
//                              sightings of the session on the wire)
//   app span                -> per-service app-span counter only (the sys
//                              span of the same session carries the RED
//                              sample; counting both would double-count)
//   third-party span        -> global counter only (same reason)
//
// Network-side counters (bytes, packets, TCP-seq-derived retransmissions,
// resets, transit times) come from the netsim flow records: record_flow
// resolves each canonical five-tuple through the directory populated by
// client-side spans and folds the counters into the owning edge.
//
// Concurrency: lock-sharded like the span store — accumulators live in
// `stripes` independently-locked maps keyed by service/edge hash, so
// concurrent ingest threads contend only when they touch the same stripe.
// Every fold is commutative, which gives the determinism contract: serial
// and parallel ingest of the same span stream produce byte-identical
// canonical_metrics() / canonical_service_map() output (pinned by the
// MetricsEquivalence suite).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "agent/span.h"
#include "agent/span_batch.h"
#include "common/five_tuple.h"
#include "common/governor.h"
#include "common/histogram.h"
#include "common/types.h"
#include "metrics/rollup.h"
#include "netsim/fabric.h"
#include "netsim/resource.h"

namespace deepflow::metrics {

struct MetricsConfig {
  /// Master switch: when false the aggregator ignores every record_* call
  /// (the server still constructs it, so toggling is config-only).
  bool enabled = true;
  /// Lock stripes for the accumulator maps (>= 1).
  size_t stripes = 8;
  /// Ring sizing for the per-key multi-resolution series.
  RollupConfig rollup;
  /// Upper bound of the per-key latency histograms.
  DurationNs histogram_max = 100 * kSecond;
};

/// All-time RED summary of one service or edge, percentiles included.
struct RedSummary {
  u64 requests = 0;
  u64 errors = 0;
  u64 incomplete = 0;
  DurationNs duration_sum = 0;
  DurationNs p50 = 0;
  DurationNs p90 = 0;
  DurationNs p99 = 0;

  double error_rate() const {
    return requests ? static_cast<double>(errors) / static_cast<double>(requests)
                    : 0.0;
  }
  DurationNs mean() const { return requests ? duration_sum / requests : 0; }
};

/// Result of query_metrics: the matching time-series buckets plus totals.
struct MetricsSeries {
  bool found = false;          // false: the key has never been seen
  std::string key;             // service name, or "client->server"
  DurationNs resolution = 0;   // actual bucket width served
  std::vector<MetricsBucket> buckets;
  RedSummary totals;
};

/// One service node of the map, RED-annotated.
struct ServiceMapNode {
  std::string name;
  RedSummary red;
  u64 app_spans = 0;
};

/// One directed client->server edge, RED + network counters.
struct ServiceMapEdge {
  std::string client;
  std::string server;
  RedSummary red;
  u64 net_frames = 0;
  // Folded from the netsim per-flow records (record_flow).
  u64 bytes = 0;
  u64 packets = 0;
  u64 retransmissions = 0;
  u64 resets = 0;
  DurationNs rtt_sum = 0;
  u64 rtt_samples = 0;

  DurationNs avg_transit() const {
    return rtt_samples ? rtt_sum / rtt_samples : 0;
  }
};

/// The universal service map: every service and every observed call edge,
/// deterministically ordered (nodes by name, edges by client then server).
struct ServiceMap {
  std::vector<ServiceMapNode> nodes;
  std::vector<ServiceMapEdge> edges;

  /// Stable, integer-only serialization for byte-for-byte comparisons.
  std::string canonical() const;
  /// Human-readable table (the examples print this).
  std::string render() const;
};

/// Aggregator self-telemetry, exported alongside the service metrics.
struct MetricsTelemetry {
  u64 spans_seen = 0;          // record_span calls (post-dedup)
  u64 service_samples = 0;     // server-side sys spans folded into services
  u64 edge_samples = 0;        // client-side sys spans folded into edges
  u64 net_frames = 0;          // net spans folded into edges
  u64 app_spans = 0;           // app spans (counted, not RED-folded)
  u64 third_party_spans = 0;   // third-party spans (counted only)
  u64 flows_folded = 0;        // flow records attributed to an edge
  u64 flows_unattributed = 0;  // flow records with no directory entry
  u64 late_samples = 0;        // ring-horizon misses across all keys/levels
  u64 services = 0;
  u64 edges = 0;
};

/// The slice of a span the RED fold actually reads — plain integers, so the
/// columnar ingest path can fold straight out of SpanBatch columns without
/// materializing Span objects (no string construction per sample).
struct SpanSample {
  agent::SpanKind kind = agent::SpanKind::kSystem;
  bool from_server_side = false;
  bool ok = true;
  bool incomplete = false;
  u32 client_ip = 0;
  u32 server_ip = 0;
  TimestampNs start_ts = 0;
  DurationNs duration = 0;
  FiveTuple tuple;
};

class MetricsAggregator {
 public:
  /// Minimum per-service request count before p99-based outlier detection
  /// engages (below this the histogram tail is noise).
  static constexpr u64 kOutlierMinSamples = 64;

  /// A non-null `governor` receives push-based accounting of per-key
  /// accumulator bytes on its kMetrics account (each new service/edge costs
  /// a histogram plus the multi-resolution rings).
  MetricsAggregator(const netsim::ResourceRegistry* registry,
                    MetricsConfig config = {},
                    ResourceGovernor* governor = nullptr);

  bool enabled() const { return config_.enabled; }

  /// Fold one span (thread-safe; call after ingest dedup so at-least-once
  /// transports still count each session exactly once).
  void record_span(const agent::Span& span);

  /// Same fold from the integer slice alone (record_span delegates here, so
  /// the two are identical by construction).
  void record_sample(const SpanSample& sample);

  /// Fold every span of a columnar batch, skipping rows whose `skip` byte is
  /// nonzero (the server passes its dedup verdicts). Reads columns directly.
  void record_batch(const agent::SpanBatch& batch,
                    const std::vector<u8>& skip);

  /// RED-outlier test for the governor's tail sampler: true when the sample
  /// is a server-side sys span whose duration reaches its service's all-time
  /// p99 (with at least kOutlierMinSamples requests folded). Takes the
  /// service's stripe lock; intended to be called only while the ladder is
  /// at kDownsample or above.
  bool is_latency_outlier(const SpanSample& sample) const;

  /// Fold one per-flow network metric record (thread-safe). Flows whose
  /// canonical tuple was never seen on a client-side span count as
  /// unattributed.
  void record_flow(const FiveTuple& tuple, const netsim::FlowMetrics& flow);

  /// Fold another aggregator's entire state into this one (the federation
  /// query plane merges the selected per-partition aggregators into a
  /// scratch instance with this). Both must share the same MetricsConfig
  /// shape (histogram bound, rollup layout). Every fold is commutative, so
  /// merging partitions in any order equals having folded the union stream
  /// directly — byte-identical canonical output when no series overflowed
  /// its retention horizon. Takes both aggregators' stripe locks; do not
  /// call concurrently with a merge in the opposite direction.
  void merge_from(const MetricsAggregator& other);

  // -- Query plane. ---------------------------------------------------------

  /// Time-series of one service over [from, to] at (approximately) the
  /// requested bucket width. `found == false` for unknown services.
  MetricsSeries query_metrics(const std::string& service, TimestampNs from,
                              TimestampNs to,
                              DurationNs resolution = kSecond) const;

  /// Same, for the directed edge client->server.
  MetricsSeries query_edge_metrics(const std::string& client,
                                   const std::string& server, TimestampNs from,
                                   TimestampNs to,
                                   DurationNs resolution = kSecond) const;

  /// The service map over [from, to]. The full-range default reports
  /// all-time totals; a narrower window sums the retained series buckets
  /// (counts/durations windowed; percentiles always come from the all-time
  /// histograms, as bucket scalars cannot reconstruct them).
  ServiceMap service_map(TimestampNs from = 0,
                         TimestampNs to = ~TimestampNs{0}) const;

  /// Deterministic, integer-only dump of every accumulator and every
  /// retained series bucket, sorted; the equivalence suites compare serial
  /// vs parallel ingest byte for byte on this.
  std::string canonical_metrics() const;
  /// canonical() of the full-range service map.
  std::string canonical_service_map() const;

  MetricsTelemetry telemetry() const;

 private:
  struct ServiceStats {
    u64 requests = 0;
    u64 errors = 0;
    u64 incomplete = 0;
    DurationNs duration_sum = 0;
    LatencyHistogram latency;
    u64 app_spans = 0;
    MultiResolutionSeries series;

    ServiceStats(const MetricsConfig& config)
        : latency(config.histogram_max), series(config.rollup) {}
  };

  struct EdgeStats {
    u64 requests = 0;
    u64 errors = 0;
    u64 incomplete = 0;
    DurationNs duration_sum = 0;
    LatencyHistogram latency;
    u64 net_frames = 0;
    u64 flow_bytes = 0;
    u64 flow_packets = 0;
    u64 flow_retransmissions = 0;
    u64 flow_resets = 0;
    DurationNs flow_rtt_sum = 0;
    u64 flow_rtt_samples = 0;
    MultiResolutionSeries series;

    EdgeStats(const MetricsConfig& config)
        : latency(config.histogram_max), series(config.rollup) {}
  };

  using EdgeKey = std::pair<std::string, std::string>;  // client, server
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& key) const {
      return std::hash<std::string>{}(key.first) * 1000003u ^
             std::hash<std::string>{}(key.second);
    }
  };

  // Per-stripe telemetry tallies live inside the stripes and are bumped
  // under the locks the folds already hold: a global atomic per span would
  // bounce one cache line between every ingest thread.
  struct ServiceStripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, ServiceStats> services;
    u64 service_samples = 0;
    u64 app_spans = 0;
  };
  struct EdgeStripe {
    mutable std::mutex mu;
    std::unordered_map<EdgeKey, EdgeStats, EdgeKeyHash> edges;
    u64 edge_samples = 0;
    u64 net_frames = 0;
  };
  /// canonical five-tuple -> directed edge, written by client-side spans,
  /// read when attributing flow records. Registration is idempotent: every
  /// span of a connection derives the identical directed pair, so parallel
  /// insert order cannot change the mapping.
  struct DirectoryStripe {
    mutable std::mutex mu;
    std::unordered_map<FiveTuple, EdgeKey, FiveTupleHash> flows;
    u64 flows_folded = 0;
    u64 flows_unattributed = 0;
  };

  /// ip -> display-name cache (plus the (client,server) ip-pair -> EdgeKey
  /// variant, so an edge fold costs one lock instead of two). Resolving
  /// through the registry copies a full ResourceInfo (several strings) per
  /// call, which dominated the ingest fold; names are stable for a registry
  /// version, so they are cached and invalidated wholesale when the registry
  /// version moves (the same scheme as the span store's decoded-tag cache).
  struct NameCacheStripe {
    mutable std::mutex mu;
    mutable u64 version = ~u64{0};
    mutable std::unordered_map<u32, std::string> names;
    mutable std::unordered_map<u64, EdgeKey> edges;
  };

  /// Endpoint display name: service > pod > node > dotted-quad IP.
  std::string endpoint_name(u32 ip) const;
  /// Cached (client,server) display-name pair for an edge fold.
  EdgeKey edge_key(u32 client_ip, u32 server_ip) const;
  std::string resolve_name(u32 ip) const;

  ServiceStripe& service_stripe(const std::string& name) const;
  EdgeStripe& edge_stripe(const EdgeKey& key) const;
  DirectoryStripe& directory_stripe(const FiveTuple& tuple) const;

  static RedSummary summarize(u64 requests, u64 errors, u64 incomplete,
                              DurationNs duration_sum,
                              const LatencyHistogram& latency);

  /// Push per-key creation costs to the governor (no-ops when detached).
  void account_new_service(const std::string& name,
                           const ServiceStats& stats) const;
  void account_new_edge(const EdgeKey& key, const EdgeStats& stats) const;
  void account_new_flow(const FiveTuple& tuple, const EdgeKey& key) const;

  const netsim::ResourceRegistry* registry_;
  ResourceGovernor* governor_ = nullptr;
  MetricsConfig config_;
  std::vector<std::unique_ptr<ServiceStripe>> service_stripes_;
  std::vector<std::unique_ptr<EdgeStripe>> edge_stripes_;
  std::vector<std::unique_ptr<DirectoryStripe>> directory_stripes_;
  std::vector<std::unique_ptr<NameCacheStripe>> name_stripes_;

  // Third-party spans take no stripe lock (global counter only), so this
  // one stays atomic; every other telemetry tally lives in its stripe and
  // telemetry() sums them. spans_seen is derived (every span lands in
  // exactly one tally).
  std::atomic<u64> third_party_spans_{0};
};

}  // namespace deepflow::metrics
