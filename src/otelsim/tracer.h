// Intrusive distributed-tracing SDK in the OpenTelemetry/Jaeger/Zipkin
// style: explicit context propagation. The application code (here, the
// workload engine acting as an instrumented app) starts/ends spans and
// injects a W3C traceparent header into outgoing messages; the SDK links
// spans through the propagated trace id and parent span id.
//
// Two roles in the reproduction:
//   * the intrusive baseline for the Fig 16 end-to-end comparison (per-span
//     SDK cost, fewer spans per trace than DeepFlow);
//   * the source of third-party spans for DeepFlow's integration path
//     (DeepFlow parses the reserved traceparent header, §3.3.2).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "agent/span.h"
#include "common/types.h"

namespace deepflow::otelsim {

/// A started, not yet finished span.
struct ActiveSpan {
  u64 handle = 0;
  std::string trace_id;   // 32 hex chars
  u64 span_id = 0;
  u64 parent_span_id = 0;
  std::string name;
  TimestampNs start_ts = 0;
};

/// Finished spans are exported as DeepFlow third-party spans so both the
/// baseline backends and DeepFlow's integration path can consume them.
using ExportSink = std::function<void(agent::Span&&)>;

struct TracerConfig {
  /// CPU consumed by the SDK per span (start+annotate+finish+report). This
  /// is the instrumentation overhead intrusive frameworks charge the
  /// application (Fig 16's Jaeger/Zipkin cost).
  DurationNs cost_per_span_ns = 25'000;
};

class Tracer {
 public:
  Tracer(std::string service_name, std::string host, Pid pid,
         ExportSink sink, TracerConfig config = {});

  /// Begin a span. `inbound_traceparent` is the propagated context from the
  /// incoming request ("" starts a new trace).
  ActiveSpan start_span(const std::string& name,
                        const std::string& inbound_traceparent,
                        TimestampNs now);

  /// W3C traceparent header value to inject into an outgoing request made
  /// while `span` is active: "00-<trace-id>-<span-id>-01".
  std::string inject(const ActiveSpan& span) const;

  /// Finish and export the span.
  void end_span(const ActiveSpan& span, TimestampNs now, bool ok = true,
                u32 status_code = 0);

  /// Parse the trace id out of a traceparent header ("" on malformed).
  static std::string trace_id_of(const std::string& traceparent);

  u64 spans_exported() const { return spans_exported_; }
  const TracerConfig& config() const { return config_; }

 private:
  std::string service_name_;
  std::string host_;
  Pid pid_;
  ExportSink sink_;
  TracerConfig config_;
  u64 next_span_id_ = 1;
  u64 next_trace_seq_ = 1;
  u64 spans_exported_ = 0;
};

}  // namespace deepflow::otelsim
