#include "otelsim/tracer.h"

#include <atomic>
#include <cstdio>

#include "common/hash.h"

namespace deepflow::otelsim {

Tracer::Tracer(std::string service_name, std::string host, Pid pid,
               ExportSink sink, TracerConfig config)
    : service_name_(std::move(service_name)),
      host_(std::move(host)),
      pid_(pid),
      sink_(std::move(sink)),
      config_(config) {}

namespace {
std::string hex32(u64 hi, u64 lo) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}
}  // namespace

ActiveSpan Tracer::start_span(const std::string& name,
                              const std::string& inbound_traceparent,
                              TimestampNs now) {
  ActiveSpan span;
  span.handle = next_span_id_;
  span.span_id = next_span_id_++;
  span.name = name;
  span.start_ts = now;

  const std::string inherited = trace_id_of(inbound_traceparent);
  if (!inherited.empty()) {
    span.trace_id = inherited;
    // Parent span id: third hyphen-separated field.
    // "00-<32 hex>-<16 hex>-01"
    const size_t second_dash = inbound_traceparent.find('-', 3);
    if (second_dash != std::string::npos) {
      span.parent_span_id = std::strtoull(
          inbound_traceparent.c_str() + second_dash + 1, nullptr, 16);
    }
  } else {
    // Fresh trace: derive a unique id from service identity and sequence.
    const u64 hi = fnv1a(service_name_) ^ fnv1a(host_);
    span.trace_id = hex32(hi, mix64(next_trace_seq_++ * 0x9e37u + pid_));
  }
  return span;
}

std::string Tracer::inject(const ActiveSpan& span) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "00-%s-%016llx-01", span.trace_id.c_str(),
                static_cast<unsigned long long>(span.span_id));
  return buf;
}

void Tracer::end_span(const ActiveSpan& span, TimestampNs now, bool ok,
                      u32 status_code) {
  agent::Span out;
  out.span_id = 0;  // assigned at ingest by span-id policy below
  out.kind = agent::SpanKind::kThirdParty;
  out.otel_trace_id = span.trace_id;  // 32-hex trace id, the association key
  out.host = host_;
  out.pid = pid_;
  out.start_ts = span.start_ts;
  out.end_ts = now;
  out.method = span.name;
  out.endpoint = service_name_;
  out.ok = ok;
  out.status_code = status_code;
  // Exported ids live in their own range (bit 48 set) and come from a
  // process-wide counter so spans from different tracers never collide.
  static std::atomic<u64> export_counter{1};
  out.span_id =
      (u64{1} << 48) | export_counter.fetch_add(1, std::memory_order_relaxed);
  out.parent_span_id = 0;  // linked by the assembler via otel_trace_id
  ++spans_exported_;
  if (sink_) sink_(std::move(out));
}

std::string Tracer::trace_id_of(const std::string& traceparent) {
  // "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex
  if (traceparent.size() < 55 || traceparent.compare(0, 3, "00-") != 0) {
    return {};
  }
  return traceparent.substr(3, 32);
}

}  // namespace deepflow::otelsim
