#include "kernelsim/task.h"

namespace deepflow::kernelsim {

Pid TaskManager::create_process(std::string comm) {
  const Pid pid = next_pid_++;
  processes_.emplace(pid, Process{pid, std::move(comm), {}});
  return pid;
}

Tid TaskManager::create_thread(Pid pid) {
  const Tid tid = next_tid_++;
  threads_.emplace(tid, Thread{tid, pid, 0});
  if (auto it = processes_.find(pid); it != processes_.end()) {
    it->second.threads.push_back(tid);
  }
  return tid;
}

CoroutineId TaskManager::create_coroutine(Pid pid, CoroutineId parent) {
  const CoroutineId id = next_coroutine_++;
  coroutines_.emplace(id, Coroutine{id, parent, pid});
  return id;
}

const Process* TaskManager::process(Pid pid) const {
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

const Thread* TaskManager::thread(Tid tid) const {
  const auto it = threads_.find(tid);
  return it == threads_.end() ? nullptr : &it->second;
}

const Coroutine* TaskManager::coroutine(CoroutineId id) const {
  const auto it = coroutines_.find(id);
  return it == coroutines_.end() ? nullptr : &it->second;
}

void TaskManager::set_running_coroutine(Tid tid, CoroutineId id) {
  if (auto it = threads_.find(tid); it != threads_.end()) {
    it->second.running_coroutine = id;
  }
}

CoroutineId TaskManager::pseudo_thread_root(CoroutineId id) const {
  // Walk the parent chain; bounded by creation depth, loop-free because
  // parents always predate children.
  CoroutineId current = id;
  while (true) {
    const Coroutine* c = coroutine(current);
    if (c == nullptr || c->parent == 0) return current;
    current = c->parent;
  }
}

}  // namespace deepflow::kernelsim
