#include "kernelsim/kernel.h"

#include <algorithm>

#include "common/hash.h"

namespace deepflow::kernelsim {

Kernel::Kernel(EventLoop& loop, std::string hostname, NetworkBackend* backend,
               KernelConfig config)
    : loop_(loop),
      hostname_(std::move(hostname)),
      backend_(backend),
      config_(config) {}

SocketId Kernel::open_socket(Pid pid, const FiveTuple& tuple, L4Proto proto,
                             bool tls) {
  const SocketId id = backend_ != nullptr ? backend_->allocate_socket_id()
                                          : local_socket_id_++;
  Socket sock;
  sock.id = id;
  sock.owner_pid = pid;
  sock.tuple = tuple;
  sock.proto = proto;
  sock.tls = tls;
  // Derive a deterministic per-connection ISN so sequences from different
  // connections do not collide even at equal byte offsets.
  sock.send_seq = static_cast<TcpSeq>(mix64(tuple.hash() ^ id));
  sock.recv_seq = 0;  // learned from the first inbound message
  sockets_.emplace(id, sock);
  return id;
}

void Kernel::close_socket(SocketId id) {
  if (auto it = sockets_.find(id); it != sockets_.end()) {
    it->second.open = false;
  }
}

Socket* Kernel::socket(SocketId id) {
  const auto it = sockets_.find(id);
  return it == sockets_.end() ? nullptr : &it->second;
}

const Socket* Kernel::socket(SocketId id) const {
  const auto it = sockets_.find(id);
  return it == sockets_.end() ? nullptr : &it->second;
}

std::string_view Kernel::snapshot_of(const std::string& payload) const {
  return std::string_view(payload).substr(
      0, std::min(payload.size(), config_.payload_snapshot_len));
}

std::string Kernel::ciphertext_of(const std::string& plaintext) {
  // Not cryptography — just an opaque, non-parseable byte pattern with the
  // same length, which is all the tracing plane can observe post-encryption.
  std::string out(plaintext.size(), '\0');
  u64 state = fnv1a(std::string_view(plaintext).substr(
      0, std::min<size_t>(16, plaintext.size())));
  for (size_t i = 0; i < out.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    out[i] = static_cast<char>((state >> 33) | 0x80);  // high bit: non-ASCII
  }
  return out;
}

HookContext Kernel::make_context(Tid tid, const Socket& sock, SyscallAbi abi,
                                 Direction dir, TcpSeq seq, u64 bytes,
                                 std::string_view snapshot, TimestampNs ts,
                                 bool first_of_message) const {
  HookContext ctx;
  const Thread* thread = tasks_.thread(tid);
  ctx.pid = thread != nullptr ? thread->pid : 0;
  ctx.tid = tid;
  ctx.coroutine_id = thread != nullptr ? thread->running_coroutine : 0;
  if (const Process* proc = tasks_.process(ctx.pid)) ctx.comm = proc->comm;
  ctx.socket_id = sock.id;
  ctx.tuple = dir == Direction::kEgress ? sock.tuple : sock.tuple.reversed();
  ctx.tcp_seq = seq;
  ctx.timestamp = ts;
  ctx.direction = dir;
  ctx.abi = abi;
  ctx.total_bytes = bytes;
  ctx.payload = snapshot;
  ctx.is_first_syscall_of_message = first_of_message;
  return ctx;
}

DurationNs Kernel::instrumentation_latency(SyscallAbi abi) const {
  // Approximation of the measured per-hook costs: kprobes and tracepoints
  // carry different fixed costs; we charge the mean of the two classes per
  // attached handler. Uprobe ABIs pay the trap cost per crossing.
  const size_t handlers =
      hooks_.enter_handler_count(abi) + hooks_.exit_handler_count(abi);
  if (handlers == 0) return 0;
  const DurationNs per_handler = is_kernel_abi(abi)
                                     ? (config_.kprobe_overhead_ns +
                                        config_.tracepoint_overhead_ns) /
                                           2
                                     : config_.uprobe_overhead_ns;
  return per_handler * handlers;
}

SyscallOutcome Kernel::sys_send(Tid tid, SocketId socket_id,
                                std::string payload, SyscallAbi abi,
                                TimestampNs at, bool first_of_message) {
  Socket* sock = socket(socket_id);
  if (sock == nullptr || !sock->open) return {};
  ++syscall_count_;

  const TcpSeq seq = sock->send_seq;
  const u64 bytes = payload.size();
  const DurationNs instr = instrumentation_latency(abi);
  instr_cpu_total_ += instr;

  const TimestampNs enter_ts = at;
  const TimestampNs exit_ts = at + config_.syscall_base_ns + instr;

  // TLS applications call SSL_write first; the uprobe observes plaintext.
  std::string app_payload = std::move(payload);
  std::string wire_payload;
  if (sock->tls) {
    HookContext ssl_ctx =
        make_context(tid, *sock, SyscallAbi::kSslWrite, Direction::kEgress,
                     seq, bytes, snapshot_of(app_payload), enter_ts,
                     first_of_message);
    hooks_.fire_uprobe("SSL_write", ssl_ctx);
    ssl_ctx.timestamp = enter_ts + config_.ssl_base_ns;
    hooks_.fire_uretprobe("SSL_write", ssl_ctx);
    wire_payload = ciphertext_of(app_payload);
  } else {
    wire_payload = app_payload;
  }

  const std::string_view snapshot = snapshot_of(wire_payload);
  HookContext enter = make_context(tid, *sock, abi, Direction::kEgress, seq,
                                   bytes, snapshot, enter_ts,
                                   first_of_message);
  hooks_.fire_syscall_enter(abi, enter);

  sock->send_seq += static_cast<TcpSeq>(bytes);

  HookContext exit = enter;
  exit.timestamp = exit_ts;
  exit.return_value = static_cast<i64>(bytes);
  hooks_.fire_syscall_exit(abi, exit);

  // Build the wire message only after the hooks are done with the snapshot
  // view: moving a short std::string relocates its SSO buffer and would
  // invalidate the payload string_view the hook contexts hold.
  WireMessage message;
  message.from_socket = sock->id;
  message.tuple = sock->tuple;
  message.tcp_seq = seq;
  message.total_bytes = bytes;
  message.send_ts = exit_ts;
  message.payload = std::move(wire_payload);
  message.app_payload = std::move(app_payload);

  if (backend_ != nullptr) {
    backend_->transmit(*this, *sock, std::move(message));
  }

  return SyscallOutcome{enter_ts, exit_ts, seq, bytes};
}

SyscallOutcome Kernel::sys_recv(Tid tid, SocketId socket_id,
                                const WireMessage& message, SyscallAbi abi,
                                TimestampNs at, bool first_of_message) {
  Socket* sock = socket(socket_id);
  if (sock == nullptr || !sock->open) return {};
  ++syscall_count_;

  const u64 bytes = message.total_bytes;
  const DurationNs instr = instrumentation_latency(abi);
  instr_cpu_total_ += instr;

  const TimestampNs enter_ts = at;
  const TimestampNs exit_ts = at + config_.syscall_base_ns + instr;

  sock->recv_seq = message.tcp_seq + static_cast<TcpSeq>(bytes);

  const std::string_view snapshot = snapshot_of(message.payload);
  HookContext enter = make_context(tid, *sock, abi, Direction::kIngress,
                                   message.tcp_seq, bytes, snapshot, enter_ts,
                                   first_of_message);
  hooks_.fire_syscall_enter(abi, enter);

  HookContext exit = enter;
  exit.timestamp = exit_ts;
  exit.return_value = static_cast<i64>(bytes);
  hooks_.fire_syscall_exit(abi, exit);

  // TLS applications decrypt after the kernel read; the SSL_read uprobes
  // observe the recovered plaintext carried in message.app_payload.
  if (sock->tls) {
    HookContext ssl_ctx = enter;
    ssl_ctx.abi = SyscallAbi::kSslRead;
    ssl_ctx.payload = std::string_view(message.app_payload)
                          .substr(0, std::min(message.app_payload.size(),
                                              config_.payload_snapshot_len));
    ssl_ctx.timestamp = exit_ts;
    hooks_.fire_uprobe("SSL_read", ssl_ctx);
    ssl_ctx.timestamp = exit_ts + config_.ssl_base_ns;
    hooks_.fire_uretprobe("SSL_read", ssl_ctx);
  }

  return SyscallOutcome{enter_ts, exit_ts, message.tcp_seq, bytes};
}

}  // namespace deepflow::kernelsim
