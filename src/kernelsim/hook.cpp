#include "kernelsim/hook.h"

#include <algorithm>

namespace deepflow::kernelsim {

namespace {
size_t abi_index(SyscallAbi abi) { return static_cast<size_t>(abi); }
}  // namespace

HookId HookRegistry::attach_syscall(HookType type, SyscallAbi abi,
                                    HookHandler handler) {
  auto& hooks = syscall_hooks_[abi_index(abi)];
  const HookId id = next_id_++;
  switch (type) {
    case HookType::kKprobe:
      hooks.kprobe.push_back({id, std::move(handler)});
      break;
    case HookType::kKretprobe:
      hooks.kretprobe.push_back({id, std::move(handler)});
      break;
    case HookType::kTracepointEnter:
      hooks.tp_enter.push_back({id, std::move(handler)});
      break;
    case HookType::kTracepointExit:
      hooks.tp_exit.push_back({id, std::move(handler)});
      break;
    case HookType::kUprobe:
    case HookType::kUretprobe:
      // Uprobes target symbols, not syscalls; treat as programming error but
      // stay noexcept-safe: register nothing.
      return 0;
  }
  return id;
}

HookId HookRegistry::attach_uprobe(HookType type, std::string symbol,
                                   HookHandler handler) {
  if (type != HookType::kUprobe && type != HookType::kUretprobe) return 0;
  auto it = std::find_if(uprobe_hooks_.begin(), uprobe_hooks_.end(),
                         [&](const auto& p) { return p.first == symbol; });
  if (it == uprobe_hooks_.end()) {
    uprobe_hooks_.emplace_back(std::move(symbol), UprobeHooks{});
    it = std::prev(uprobe_hooks_.end());
  }
  const HookId id = next_id_++;
  auto& vec = type == HookType::kUprobe ? it->second.entry : it->second.exit;
  vec.push_back({id, std::move(handler)});
  return id;
}

void HookRegistry::detach(HookId id) {
  auto erase_from = [id](std::vector<Entry>& entries) {
    std::erase_if(entries, [id](const Entry& e) { return e.id == id; });
  };
  for (auto& hooks : syscall_hooks_) {
    erase_from(hooks.kprobe);
    erase_from(hooks.kretprobe);
    erase_from(hooks.tp_enter);
    erase_from(hooks.tp_exit);
  }
  for (auto& [symbol, hooks] : uprobe_hooks_) {
    erase_from(hooks.entry);
    erase_from(hooks.exit);
  }
}

size_t HookRegistry::attached_count() const {
  size_t n = 0;
  for (const auto& hooks : syscall_hooks_) {
    n += hooks.kprobe.size() + hooks.kretprobe.size() + hooks.tp_enter.size() +
         hooks.tp_exit.size();
  }
  for (const auto& [symbol, hooks] : uprobe_hooks_) {
    n += hooks.entry.size() + hooks.exit.size();
  }
  return n;
}

void HookRegistry::fire_all(const std::vector<Entry>& entries,
                            const HookContext& ctx) {
  for (const auto& entry : entries) entry.handler(ctx);
}

void HookRegistry::fire_syscall_enter(SyscallAbi abi,
                                      const HookContext& ctx) const {
  const auto& hooks = syscall_hooks_[abi_index(abi)];
  fire_all(hooks.kprobe, ctx);
  fire_all(hooks.tp_enter, ctx);
}

void HookRegistry::fire_syscall_exit(SyscallAbi abi,
                                     const HookContext& ctx) const {
  const auto& hooks = syscall_hooks_[abi_index(abi)];
  fire_all(hooks.kretprobe, ctx);
  fire_all(hooks.tp_exit, ctx);
}

void HookRegistry::fire_uprobe(const std::string& symbol,
                               const HookContext& ctx) const {
  for (const auto& [name, hooks] : uprobe_hooks_) {
    if (name == symbol) fire_all(hooks.entry, ctx);
  }
}

void HookRegistry::fire_uretprobe(const std::string& symbol,
                                  const HookContext& ctx) const {
  for (const auto& [name, hooks] : uprobe_hooks_) {
    if (name == symbol) fire_all(hooks.exit, ctx);
  }
}

bool HookRegistry::syscall_hooked(SyscallAbi abi) const {
  const auto& hooks = syscall_hooks_[abi_index(abi)];
  return !hooks.kprobe.empty() || !hooks.kretprobe.empty() ||
         !hooks.tp_enter.empty() || !hooks.tp_exit.empty();
}

size_t HookRegistry::enter_handler_count(SyscallAbi abi) const {
  const auto& hooks = syscall_hooks_[abi_index(abi)];
  return hooks.kprobe.size() + hooks.tp_enter.size();
}

size_t HookRegistry::exit_handler_count(SyscallAbi abi) const {
  const auto& hooks = syscall_hooks_[abi_index(abi)];
  return hooks.kretprobe.size() + hooks.tp_exit.size();
}

}  // namespace deepflow::kernelsim
