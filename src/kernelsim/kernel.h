// The simulated per-node kernel: socket table, task table, hook registry and
// the ten traced syscall ABIs. Workload components execute syscalls through
// this class; every traced syscall fires enter/exit hooks exactly as the
// real kernel fires kprobes/tracepoints for the DeepFlow agent.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/five_tuple.h"
#include "common/sim_clock.h"
#include "common/types.h"
#include "kernelsim/hook.h"
#include "kernelsim/socket.h"
#include "kernelsim/task.h"

namespace deepflow::kernelsim {

class Kernel;

/// Transport used by the kernel to hand an outbound message to the network
/// fabric (implemented by netsim). The backend is responsible for latency,
/// device taps, fault injection and final delivery to the peer kernel.
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;
  virtual void transmit(Kernel& source, const Socket& socket,
                        WireMessage message) = 0;
  /// Socket ids must be unique across every kernel sharing this backend
  /// (fabric routes are keyed by socket id alone), so the backend owns the
  /// allocator. Backend-scoped — rather than process-global — allocation
  /// keeps whole-cluster runs reproducible: ids (and the ISNs derived from
  /// them) restart with each experiment instead of leaking state between
  /// runs in the same process.
  SocketId allocate_socket_id() { return next_socket_id_++; }

 private:
  SocketId next_socket_id_ = 1;
};

/// Tunable costs of the simulated syscall path. Defaults approximate the
/// paper's Fig 13 measurements on the testbed hardware.
struct KernelConfig {
  /// Base in-kernel execution time of a traced data-movement syscall.
  DurationNs syscall_base_ns = 2'000;
  /// Added latency per attached kprobe/kretprobe handler.
  DurationNs kprobe_overhead_ns = 250;
  /// Added latency per attached tracepoint handler (slightly cheaper).
  DurationNs tracepoint_overhead_ns = 200;
  /// Added latency per uprobe/uretprobe crossing (trap into kernel).
  DurationNs uprobe_overhead_ns = 420;
  /// Intrinsic cost of the user-space TLS read/write function itself.
  DurationNs ssl_base_ns = 6'153;
  /// Bytes of payload snapshotted for hook handlers (BPF bounded copy).
  size_t payload_snapshot_len = 256;
};

/// Result of one simulated syscall: the enter/exit timestamps bracketing the
/// in-kernel execution plus the sequence the message occupied.
struct SyscallOutcome {
  TimestampNs enter_ts = 0;
  TimestampNs exit_ts = 0;
  TcpSeq tcp_seq = 0;
  u64 bytes = 0;
};

class Kernel {
 public:
  /// `hostname` identifies the node for tagging; `backend` may be null for
  /// kernels used in loopback-only tests.
  Kernel(EventLoop& loop, std::string hostname, NetworkBackend* backend,
         KernelConfig config = {});

  const std::string& hostname() const { return hostname_; }
  EventLoop& loop() { return loop_; }
  TaskManager& tasks() { return tasks_; }
  const TaskManager& tasks() const { return tasks_; }
  HookRegistry& hooks() { return hooks_; }
  const KernelConfig& config() const { return config_; }

  // -- Socket lifecycle. --------------------------------------------------

  /// Open a socket owned by `pid` with the given local-perspective tuple.
  /// Socket ids are unique across every Kernel in the process, mirroring
  /// DeepFlow's globally unique socket id.
  SocketId open_socket(Pid pid, const FiveTuple& tuple,
                       L4Proto proto = L4Proto::kTcp, bool tls = false);
  void close_socket(SocketId id);
  Socket* socket(SocketId id);
  const Socket* socket(SocketId id) const;

  // -- Traced syscalls. ----------------------------------------------------

  /// Execute an egress syscall on thread `tid` at simulated time `at`:
  /// fires enter hooks, advances the send sequence, hands the wire message
  /// to the network backend (delivery scheduled at exit time), fires exit
  /// hooks. `first_of_message` distinguishes the initial syscall of a
  /// message from continuation writes (DeepFlow only processes the first).
  SyscallOutcome sys_send(Tid tid, SocketId socket_id, std::string payload,
                          SyscallAbi abi, TimestampNs at,
                          bool first_of_message = true);

  /// Execute an ingress syscall consuming a delivered message. Called by the
  /// workload engine when the component's thread picks the message up.
  SyscallOutcome sys_recv(Tid tid, SocketId socket_id,
                          const WireMessage& message, SyscallAbi abi,
                          TimestampNs at, bool first_of_message = true);

  /// Latency the current instrumentation adds to one `abi` syscall
  /// (enter+exit hook handlers). Used by benches and by the workload CPU
  /// model: attached tracing literally consumes node CPU.
  DurationNs instrumentation_latency(SyscallAbi abi) const;

  /// Total CPU-time consumed by instrumentation so far on this kernel.
  DurationNs instrumentation_cpu_total() const { return instr_cpu_total_; }

  /// Count of traced syscalls executed (both directions).
  u64 syscall_count() const { return syscall_count_; }

 private:
  HookContext make_context(Tid tid, const Socket& sock, SyscallAbi abi,
                           Direction dir, TcpSeq seq, u64 bytes,
                           std::string_view snapshot, TimestampNs ts,
                           bool first_of_message) const;
  std::string_view snapshot_of(const std::string& payload) const;
  /// Scrambled view of a TLS payload as kernel hooks would see it.
  static std::string ciphertext_of(const std::string& plaintext);

  EventLoop& loop_;
  std::string hostname_;
  NetworkBackend* backend_;
  KernelConfig config_;
  TaskManager tasks_;
  HookRegistry hooks_;
  std::unordered_map<SocketId, Socket> sockets_;
  DurationNs instr_cpu_total_ = 0;
  u64 syscall_count_ = 0;

  SocketId local_socket_id_ = 1;  // backend-less kernels (unit tests) only
};

}  // namespace deepflow::kernelsim
