// Socket table entries of the simulated kernel. Each socket carries the
// per-direction TCP sequence counters that DeepFlow records at capture time
// and later uses for inter-component association (network forwarding never
// rewrites the sequence, §3.3.2).
#pragma once

#include <string>

#include "common/five_tuple.h"
#include "common/types.h"

namespace deepflow::kernelsim {

struct Socket {
  SocketId id = 0;          // globally unique across all simulated kernels
  Pid owner_pid = 0;
  FiveTuple tuple;          // local perspective: src = this host's endpoint
  L4Proto proto = L4Proto::kTcp;
  /// Sequence number of the next byte this side will send. Initialized to a
  /// per-connection ISN so that distinct connections never collide.
  TcpSeq send_seq = 0;
  /// Next expected inbound sequence (peer's send_seq mirror).
  TcpSeq recv_seq = 0;
  /// When true the application encrypts via the simulated TLS library:
  /// kernel-side hooks observe ciphertext and only the SSL_read/SSL_write
  /// uprobes see plaintext.
  bool tls = false;
  bool open = true;
};

/// A message crossing the simulated wire. Carries everything a capture point
/// (kernel hook or device tap) can observe.
struct WireMessage {
  SocketId from_socket = 0;
  FiveTuple tuple;        // direction of travel: src = sender
  TcpSeq tcp_seq = 0;     // sequence of the first payload byte
  std::string payload;    // bytes on the wire (ciphertext if TLS)
  /// Plaintext as seen by the application above the TLS library. Equals
  /// `payload` for non-TLS flows. Kernel hooks and device taps never see
  /// this; only the SSL_read/SSL_write uprobes (and the receiving app) do.
  std::string app_payload;
  u64 total_bytes = 0;
  TimestampNs send_ts = 0;
};

}  // namespace deepflow::kernelsim
