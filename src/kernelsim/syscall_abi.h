// The ten instrumented syscall ABIs of DeepFlow's narrow-waist model
// (paper Table 3) plus the user-space extension points (uprobes on TLS
// read/write). These cover every data-communication pattern between
// microservice components — blocking or non-blocking, synchronous or
// asynchronous — independent of application logic and protocol.
#pragma once

#include <array>
#include <string_view>

#include "common/types.h"

namespace deepflow::kernelsim {

/// Direction of a data-movement ABI as classified by the tracing plane.
/// Note (§3.2.1): ingress/egress does NOT map 1:1 to request/response — a
/// client's egress is a request while a server's egress is a response; the
/// request/response inference happens later, in protocol parsing.
enum class Direction : u8 { kIngress, kEgress };

/// Instrumented ABIs. The first ten are the kernel syscalls of Table 3; the
/// ssl_* entries are the uprobe extension points used to observe plaintext
/// before TLS encryption (§3.2.1, "Instrumentation Extensions").
enum class SyscallAbi : u8 {
  // Ingress system calls.
  kRecvMsg,
  kRecvMmsg,
  kReadV,
  kRead,
  kRecvFrom,
  // Egress system calls.
  kSendMsg,
  kSendMmsg,
  kWriteV,
  kWrite,
  kSendTo,
  // User-space uprobe extension points.
  kSslRead,
  kSslWrite,
};

constexpr size_t kSyscallAbiCount = 12;
constexpr size_t kKernelAbiCount = 10;

constexpr std::array<SyscallAbi, 5> kIngressAbis = {
    SyscallAbi::kRecvMsg, SyscallAbi::kRecvMmsg, SyscallAbi::kReadV,
    SyscallAbi::kRead, SyscallAbi::kRecvFrom};

constexpr std::array<SyscallAbi, 5> kEgressAbis = {
    SyscallAbi::kSendMsg, SyscallAbi::kSendMmsg, SyscallAbi::kWriteV,
    SyscallAbi::kWrite, SyscallAbi::kSendTo};

constexpr Direction direction_of(SyscallAbi abi) {
  switch (abi) {
    case SyscallAbi::kRecvMsg:
    case SyscallAbi::kRecvMmsg:
    case SyscallAbi::kReadV:
    case SyscallAbi::kRead:
    case SyscallAbi::kRecvFrom:
    case SyscallAbi::kSslRead:
      return Direction::kIngress;
    case SyscallAbi::kSendMsg:
    case SyscallAbi::kSendMmsg:
    case SyscallAbi::kWriteV:
    case SyscallAbi::kWrite:
    case SyscallAbi::kSendTo:
    case SyscallAbi::kSslWrite:
      return Direction::kEgress;
  }
  return Direction::kIngress;
}

/// True for the ten kernel syscalls (kprobe/tracepoint targets); false for
/// the uprobe extension points.
constexpr bool is_kernel_abi(SyscallAbi abi) {
  return abi != SyscallAbi::kSslRead && abi != SyscallAbi::kSslWrite;
}

constexpr std::string_view abi_name(SyscallAbi abi) {
  switch (abi) {
    case SyscallAbi::kRecvMsg: return "recvmsg";
    case SyscallAbi::kRecvMmsg: return "recvmmsg";
    case SyscallAbi::kReadV: return "readv";
    case SyscallAbi::kRead: return "read";
    case SyscallAbi::kRecvFrom: return "recvfrom";
    case SyscallAbi::kSendMsg: return "sendmsg";
    case SyscallAbi::kSendMmsg: return "sendmmsg";
    case SyscallAbi::kWriteV: return "writev";
    case SyscallAbi::kWrite: return "write";
    case SyscallAbi::kSendTo: return "sendto";
    case SyscallAbi::kSslRead: return "ssl_read";
    case SyscallAbi::kSslWrite: return "ssl_write";
  }
  return "?";
}

}  // namespace deepflow::kernelsim
