// Hook points of the simulated kernel: the attachment surface that the eBPF
// runtime (src/ebpf) binds programs to. Mirrors the real mechanisms DeepFlow
// uses — kprobe/kretprobe and tracepoint sys_enter/sys_exit on the ten ABIs,
// uprobe/uretprobe on user-space symbols (paper Figure 5).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/five_tuple.h"
#include "common/types.h"
#include "kernelsim/syscall_abi.h"

namespace deepflow::kernelsim {

/// Kind of kernel attachment point.
enum class HookType : u8 {
  kKprobe,      // fires at syscall entry
  kKretprobe,   // fires at syscall exit
  kTracepointEnter,  // raw_syscalls:sys_enter
  kTracepointExit,   // raw_syscalls:sys_exit
  kUprobe,      // user-space function entry (e.g. SSL_read)
  kUretprobe,   // user-space function exit
};

constexpr std::string_view hook_type_name(HookType t) {
  switch (t) {
    case HookType::kKprobe: return "kprobe";
    case HookType::kKretprobe: return "kretprobe";
    case HookType::kTracepointEnter: return "tracepoint/sys_enter";
    case HookType::kTracepointExit: return "tracepoint/sys_exit";
    case HookType::kUprobe: return "uprobe";
    case HookType::kUretprobe: return "uretprobe";
  }
  return "?";
}

/// Everything a hook handler can observe about one syscall crossing the
/// kernel boundary. This is the paper's four information categories
/// (§3.2.1): program info, network info, tracing info, syscall info.
struct HookContext {
  // -- Program information.
  Pid pid = 0;
  Tid tid = 0;
  CoroutineId coroutine_id = 0;  // 0 when not running on a coroutine
  std::string_view comm;         // process name

  // -- Network information.
  SocketId socket_id = 0;
  FiveTuple tuple;
  TcpSeq tcp_seq = 0;  // sequence at the first byte of this message

  // -- Tracing information.
  TimestampNs timestamp = 0;  // simulated time of this hook firing
  Direction direction = Direction::kIngress;

  // -- Syscall information.
  SyscallAbi abi = SyscallAbi::kRead;
  u64 total_bytes = 0;          // full read/write length
  std::string_view payload;     // bounded snapshot available to the program
  i64 return_value = 0;         // only meaningful on exit-side hooks
  bool is_first_syscall_of_message = true;  // continuation reads/writes false
};

/// A registered hook program. Handlers run synchronously inside the
/// simulated kernel, as real eBPF programs do.
using HookHandler = std::function<void(const HookContext&)>;

using HookId = u64;

/// Registry of attachment points for one simulated kernel. Attach/detach are
/// in-flight operations: no restart of monitored processes is needed, which
/// is the zero-code property the paper leans on.
class HookRegistry {
 public:
  /// Attach to a kernel syscall ABI hook. `type` must be one of the four
  /// kernel hook types. Returns an id usable with detach().
  HookId attach_syscall(HookType type, SyscallAbi abi, HookHandler handler);

  /// Attach a uprobe/uretprobe to a user-space symbol (e.g. "SSL_read").
  HookId attach_uprobe(HookType type, std::string symbol, HookHandler handler);

  /// Remove a previously attached hook. Unknown ids are ignored.
  void detach(HookId id);

  /// Number of handlers currently attached (all types).
  size_t attached_count() const;

  // -- Kernel-side dispatch (called by Kernel, not by users). ------------

  void fire_syscall_enter(SyscallAbi abi, const HookContext& ctx) const;
  void fire_syscall_exit(SyscallAbi abi, const HookContext& ctx) const;
  void fire_uprobe(const std::string& symbol, const HookContext& ctx) const;
  void fire_uretprobe(const std::string& symbol, const HookContext& ctx) const;

  /// True when any enter/exit handler is attached to `abi` — lets the kernel
  /// skip snapshot work for untraced syscalls.
  bool syscall_hooked(SyscallAbi abi) const;

  /// Handlers attached to `abi` on the enter and exit side respectively —
  /// the kernel uses these to model per-hook latency (Fig 13).
  size_t enter_handler_count(SyscallAbi abi) const;
  size_t exit_handler_count(SyscallAbi abi) const;

 private:
  struct Entry {
    HookId id;
    HookHandler handler;
  };
  struct SyscallHooks {
    std::vector<Entry> kprobe, kretprobe, tp_enter, tp_exit;
  };
  struct UprobeHooks {
    std::vector<Entry> entry, exit;
  };

  static void fire_all(const std::vector<Entry>& entries,
                       const HookContext& ctx);

  std::array<SyscallHooks, kSyscallAbiCount> syscall_hooks_{};
  std::vector<std::pair<std::string, UprobeHooks>> uprobe_hooks_;
  HookId next_id_ = 1;
};

}  // namespace deepflow::kernelsim
