// Task model of the simulated kernel: processes, threads, and coroutines.
//
// Threads matter to DeepFlow because intra-component association hinges on
// (pid, tid) pairs and on the observation that a thread processes one message
// at a time (§3.3.1). Coroutines matter because goroutine-style runtimes
// multiplex many logical flows onto few kernel threads; DeepFlow watches
// coroutine creation to build a pseudo-thread structure that restores the
// 1:1 mapping.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace deepflow::kernelsim {

struct Process {
  Pid pid = 0;
  std::string comm;              // executable name, e.g. "nginx"
  std::vector<Tid> threads;
};

struct Thread {
  Tid tid = 0;
  Pid pid = 0;
  CoroutineId running_coroutine = 0;  // 0 = plain thread execution
};

struct Coroutine {
  CoroutineId id = 0;
  CoroutineId parent = 0;  // 0 = root coroutine
  Pid pid = 0;
};

/// Creation/lookup of tasks. Thread ids are globally unique (Linux-style
/// global tid namespace) so (pid, tid) association never aliases.
class TaskManager {
 public:
  Pid create_process(std::string comm);
  Tid create_thread(Pid pid);
  /// Create a coroutine owned by `pid`; `parent` is the spawning coroutine
  /// (0 for a root coroutine, e.g. one started per accepted connection).
  CoroutineId create_coroutine(Pid pid, CoroutineId parent = 0);

  const Process* process(Pid pid) const;
  const Thread* thread(Tid tid) const;
  const Coroutine* coroutine(CoroutineId id) const;

  /// Mark which coroutine a thread is currently running (0 = none). This is
  /// what lets hook handlers see the coroutine id of a syscall.
  void set_running_coroutine(Tid tid, CoroutineId id);

  /// Root ancestor of a coroutine: the pseudo-thread id used to associate
  /// spans that belong to one logical request flow even as it hops between
  /// worker threads (paper: "parent-child coroutine relationship in a
  /// pseudo-thread structure").
  CoroutineId pseudo_thread_root(CoroutineId id) const;

  size_t process_count() const { return processes_.size(); }
  size_t thread_count() const { return threads_.size(); }

 private:
  std::unordered_map<Pid, Process> processes_;
  std::unordered_map<Tid, Thread> threads_;
  std::unordered_map<CoroutineId, Coroutine> coroutines_;
  Pid next_pid_ = 100;
  Tid next_tid_ = 1000;
  CoroutineId next_coroutine_ = 1;
};

}  // namespace deepflow::kernelsim
