#include "ebpf/verifier.h"

namespace deepflow::ebpf {

std::string_view program_type_name(ProgramType type) {
  switch (type) {
    case ProgramType::kKprobe: return "kprobe";
    case ProgramType::kKretprobe: return "kretprobe";
    case ProgramType::kTracepoint: return "tracepoint";
    case ProgramType::kTracepointExit: return "tracepoint_exit";
    case ProgramType::kUprobe: return "uprobe";
    case ProgramType::kUretprobe: return "uretprobe";
    case ProgramType::kSocketFilter: return "socket_filter";
  }
  return "?";
}

bool Verifier::helper_allowed(ProgramType type, Helper helper) {
  const bool is_probe = type != ProgramType::kSocketFilter;
  switch (helper) {
    case Helper::kMapLookup:
    case Helper::kMapUpdate:
    case Helper::kMapDelete:
    case Helper::kPerfEventOutput:
    case Helper::kKtimeGetNs:
      return true;  // available to every supported type
    case Helper::kGetCurrentPidTgid:
    case Helper::kGetCurrentComm:
    case Helper::kProbeRead:
      // Process-context helpers: socket filters run in softirq context where
      // "current" is meaningless — the real verifier rejects these there.
      return is_probe;
    case Helper::kSkbLoadBytes:
      return type == ProgramType::kSocketFilter;
  }
  return false;
}

VerifyResult Verifier::verify(const Program& program) const {
  const ProgramSpec& spec = program.spec;

  if (spec.instruction_count == 0) {
    ++rejected_;
    return VerifyResult::reject("empty program: zero instructions");
  }
  if (spec.instruction_count > limits_.max_instructions) {
    ++rejected_;
    return VerifyResult::reject(
        "program too large: " + std::to_string(spec.instruction_count) +
        " insns > " + std::to_string(limits_.max_instructions));
  }
  if (spec.stack_bytes > limits_.max_stack_bytes) {
    ++rejected_;
    return VerifyResult::reject(
        "stack overflow: " + std::to_string(spec.stack_bytes) + " bytes > " +
        std::to_string(limits_.max_stack_bytes));
  }
  if (!spec.loops_bounded) {
    ++rejected_;
    return VerifyResult::reject("back-edge without provable bound");
  }
  for (const Helper helper : spec.helpers) {
    if (!helper_allowed(spec.type, helper)) {
      ++rejected_;
      return VerifyResult::reject(
          "helper not allowed for program type " +
          std::string(program_type_name(spec.type)));
    }
  }
  // Behavior must match type: hook programs need a hook handler, socket
  // filters need a packet handler.
  if (spec.type == ProgramType::kSocketFilter) {
    if (!program.on_packet) {
      ++rejected_;
      return VerifyResult::reject("socket_filter without packet handler");
    }
  } else if (!program.on_hook) {
    ++rejected_;
    return VerifyResult::reject("hook program without hook handler");
  }

  ++verified_;
  return VerifyResult::accept();
}

}  // namespace deepflow::ebpf
