// BPF program loader/attacher. Verifies, then binds programs to kernel hook
// points or to device taps. Attachment is in-flight: monitored applications
// are never restarted, recompiled, or redeployed (the paper's zero-code
// deployment property).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "kernelsim/kernel.h"
#include "netsim/device.h"

namespace deepflow::ebpf {

/// A successfully attached program (bpf_link equivalent). Detach via
/// Loader::unload; destruction does not auto-detach (links outlive the
/// loader call scope in the agent).
struct Link {
  u64 link_id = 0;
  std::string program_name;
  ProgramType type = ProgramType::kKprobe;
};

/// Outcome of a load attempt.
struct LoadResult {
  bool ok = false;
  std::string error;
  Link link;
};

class Loader {
 public:
  explicit Loader(kernelsim::Kernel* kernel, VerifierLimits limits = {})
      : kernel_(kernel), verifier_(limits) {}

  /// Verify and attach a syscall-hook program to `abi`. kprobe/kretprobe and
  /// tracepoint/tracepoint_exit map to the corresponding kernel hook types.
  LoadResult load_syscall(Program program, kernelsim::SyscallAbi abi);

  /// Verify and attach a uprobe/uretprobe program to a user-space symbol.
  LoadResult load_uprobe(Program program, const std::string& symbol);

  /// Verify and attach a socket-filter program to a device tap (the
  /// cBPF/AF_PACKET path for NIC-side capture).
  LoadResult load_socket_filter(Program program, netsim::Device* device);

  /// Detach a previously attached program. Socket-filter links cannot be
  /// detached in this emulation (device taps are append-only); hook links
  /// are removed from the registry.
  void unload(const Link& link);

  const Verifier& verifier() const { return verifier_; }
  size_t attached_count() const { return attached_.size(); }

 private:
  struct Attached {
    u64 link_id;
    kernelsim::HookId hook_id;  // 0 for socket filters
  };

  kernelsim::Kernel* kernel_;
  Verifier verifier_;
  std::vector<Attached> attached_;
  u64 next_link_id_ = 1;
};

}  // namespace deepflow::ebpf
