// The eBPF verifier stand-in. Validates a program's declared static
// properties against the kernel's limits before the loader may attach it.
// A program that fails verification never runs — this is the mechanism that
// lets DeepFlow promise "no kernel crashes" (§2.3.1).
#pragma once

#include <string>

#include "ebpf/program.h"

namespace deepflow::ebpf {

struct VerifyResult {
  bool ok = false;
  std::string reason;  // empty on success

  static VerifyResult accept() { return {true, {}}; }
  static VerifyResult reject(std::string why) { return {false, std::move(why)}; }
};

/// Kernel limits enforced on every program.
struct VerifierLimits {
  u32 max_instructions = 4096;  // classic per-program cap
  u32 max_stack_bytes = 512;
};

class Verifier {
 public:
  explicit Verifier(VerifierLimits limits = {}) : limits_(limits) {}

  /// Run all checks; the first failed check rejects with its reason.
  VerifyResult verify(const Program& program) const;

  u64 verified_count() const { return verified_; }
  u64 rejected_count() const { return rejected_; }

 private:
  /// True when `helper` is callable from programs of type `type`.
  static bool helper_allowed(ProgramType type, Helper helper);

  VerifierLimits limits_;
  mutable u64 verified_ = 0;
  mutable u64 rejected_ = 0;
};

}  // namespace deepflow::ebpf
