// Perf event buffer: per-CPU rings carrying records from BPF programs to the
// agent's user-space drain loop. Two properties of the real mechanism are
// preserved because DeepFlow's design depends on them:
//   1. per-CPU ordering only — the drain interleaves CPUs, so user space
//      sees records out of global order (motivates the time-window array);
//   2. bounded capacity — bursts overflow and events are lost, which the
//      agent must surface rather than hide (bench_ablation_perfbuf).
//
// Loss is tracked PER CPU, not just in aggregate: shard-imbalanced loss
// (one hot CPU overflowing while others idle) is a distinct production
// failure mode and must be visible through AgentStats/IngestTelemetry.
//
// An optional FaultInjector hook at the submit site models overflow under
// burst beyond what the natural ring capacity produces: an injected drop is
// counted in the same per-CPU loss counters as a real overflow (user space
// cannot tell them apart, which is the point). Only the drop kind applies
// here — a perf ring cannot reorder or duplicate records.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "common/fault.h"
#include "common/spsc_ring.h"
#include "common/types.h"

namespace deepflow::ebpf {

template <typename Record>
class PerfBuffer {
 public:
  PerfBuffer(u32 cpu_count, size_t per_cpu_capacity)
      : injected_(cpu_count) {
    rings_.reserve(cpu_count);
    for (u32 i = 0; i < cpu_count; ++i) {
      rings_.push_back(std::make_unique<SpscRing<Record>>(per_cpu_capacity));
    }
  }

  u32 cpu_count() const { return static_cast<u32>(rings_.size()); }

  /// Install a fault injector consulted on every submit (drop only).
  void set_fault_injector(FaultInjector* faults, FaultSite site) {
    faults_ = faults;
    fault_site_ = site;
  }

  /// Kernel side: submit a record from `cpu`. Returns false on overflow
  /// (natural or injected).
  bool submit(u32 cpu, Record record) {
    const u32 idx = cpu % static_cast<u32>(rings_.size());
    if (faults_ != nullptr && faults_->enabled(fault_site_) &&
        faults_->decide(fault_site_, kFaultDrop).drop) {
      injected_[idx].fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return rings_[idx]->push(std::move(record));
  }

  /// User side: drain up to `budget` records, round-robin across CPUs (the
  /// interleaving that scrambles global order). Returns records drained.
  template <typename Fn>
  size_t drain(size_t budget, Fn&& consume) {
    size_t drained = 0;
    bool any = true;
    while (drained < budget && any) {
      any = false;
      for (auto& ring : rings_) {
        if (drained >= budget) break;
        if (auto record = ring->pop()) {
          consume(std::move(*record));
          ++drained;
          any = true;
        }
      }
    }
    return drained;
  }

  /// User side, parallel drain: pop one record from a single CPU's ring.
  /// Workers that own disjoint CPU subsets can drain concurrently — each
  /// ring still has exactly one consumer, preserving per-CPU order.
  std::optional<Record> pop_cpu(u32 cpu) {
    return rings_[cpu % rings_.size()]->pop();
  }

  size_t pending() const {
    size_t n = 0;
    for (const auto& ring : rings_) n += ring->size();
    return n;
  }

  /// Records lost on one CPU's ring: natural overflow + injected drops.
  u64 lost_on_cpu(u32 cpu) const {
    const u32 idx = cpu % static_cast<u32>(rings_.size());
    return rings_[idx]->dropped() +
           injected_[idx].load(std::memory_order_relaxed);
  }

  /// Per-CPU loss counters (shard-imbalance diagnostics).
  std::vector<u64> lost_per_cpu() const {
    std::vector<u64> out(rings_.size());
    for (u32 cpu = 0; cpu < rings_.size(); ++cpu) out[cpu] = lost_on_cpu(cpu);
    return out;
  }

  /// Records lost to overflow across all CPUs.
  u64 lost() const {
    u64 n = 0;
    for (u32 cpu = 0; cpu < rings_.size(); ++cpu) n += lost_on_cpu(cpu);
    return n;
  }

 private:
  std::vector<std::unique_ptr<SpscRing<Record>>> rings_;
  std::vector<std::atomic<u64>> injected_;
  FaultInjector* faults_ = nullptr;
  FaultSite fault_site_ = FaultSite::kPerfRingSubmit;
};

}  // namespace deepflow::ebpf
