// Perf event buffer: per-CPU rings carrying records from BPF programs to the
// agent's user-space drain loop. Two properties of the real mechanism are
// preserved because DeepFlow's design depends on them:
//   1. per-CPU ordering only — the drain interleaves CPUs, so user space
//      sees records out of global order (motivates the time-window array);
//   2. bounded capacity — bursts overflow and events are lost, which the
//      agent must surface rather than hide (bench_ablation_perfbuf).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/spsc_ring.h"
#include "common/types.h"

namespace deepflow::ebpf {

template <typename Record>
class PerfBuffer {
 public:
  PerfBuffer(u32 cpu_count, size_t per_cpu_capacity) {
    rings_.reserve(cpu_count);
    for (u32 i = 0; i < cpu_count; ++i) {
      rings_.push_back(std::make_unique<SpscRing<Record>>(per_cpu_capacity));
    }
  }

  u32 cpu_count() const { return static_cast<u32>(rings_.size()); }

  /// Kernel side: submit a record from `cpu`. Returns false on overflow.
  bool submit(u32 cpu, Record record) {
    return rings_[cpu % rings_.size()]->push(std::move(record));
  }

  /// User side: drain up to `budget` records, round-robin across CPUs (the
  /// interleaving that scrambles global order). Returns records drained.
  template <typename Fn>
  size_t drain(size_t budget, Fn&& consume) {
    size_t drained = 0;
    bool any = true;
    while (drained < budget && any) {
      any = false;
      for (auto& ring : rings_) {
        if (drained >= budget) break;
        if (auto record = ring->pop()) {
          consume(std::move(*record));
          ++drained;
          any = true;
        }
      }
    }
    return drained;
  }

  /// User side, parallel drain: pop one record from a single CPU's ring.
  /// Workers that own disjoint CPU subsets can drain concurrently — each
  /// ring still has exactly one consumer, preserving per-CPU order.
  std::optional<Record> pop_cpu(u32 cpu) {
    return rings_[cpu % rings_.size()]->pop();
  }

  size_t pending() const {
    size_t n = 0;
    for (const auto& ring : rings_) n += ring->size();
    return n;
  }

  /// Records lost to overflow across all CPUs.
  u64 lost() const {
    u64 n = 0;
    for (const auto& ring : rings_) n += ring->dropped();
    return n;
  }

 private:
  std::vector<std::unique_ptr<SpscRing<Record>>> rings_;
};

}  // namespace deepflow::ebpf
