// BPF program model: a handler plus the metadata the verifier checks.
// DeepFlow's stability story rests on the verifier — a rejected program
// never attaches, and an attached program cannot crash the kernel — so the
// runtime reproduces that contract: load() verifies first, and only
// verified programs reach the hook registry.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernelsim/hook.h"
#include "netsim/device.h"

namespace deepflow::ebpf {

/// Program types supported by the loader (subset of bpf_prog_type).
enum class ProgramType : u8 {
  kKprobe,
  kKretprobe,
  kTracepoint,       // sys_enter
  kTracepointExit,   // sys_exit
  kUprobe,
  kUretprobe,
  kSocketFilter,     // cBPF/AF_PACKET capture on a network device
};

std::string_view program_type_name(ProgramType type);

/// Kernel helpers a program may call; the verifier enforces the per-type
/// whitelist, as the real verifier does.
enum class Helper : u8 {
  kMapLookup,
  kMapUpdate,
  kMapDelete,
  kPerfEventOutput,
  kKtimeGetNs,
  kGetCurrentPidTgid,
  kGetCurrentComm,
  kProbeRead,       // kprobe/uprobe family only
  kSkbLoadBytes,    // socket filter only
};

/// Static properties of a program, declared by its author and checked by the
/// verifier before attachment.
struct ProgramSpec {
  std::string name;
  ProgramType type = ProgramType::kKprobe;
  u32 instruction_count = 0;   // post-compilation size
  u32 stack_bytes = 0;         // maximum stack usage
  bool loops_bounded = true;   // all loops have verifier-provable bounds
  std::vector<Helper> helpers;
};

/// A loadable program: spec + behavior. Syscall-hook programs receive the
/// kernel HookContext; socket-filter programs receive the device TapContext.
struct Program {
  ProgramSpec spec;
  kernelsim::HookHandler on_hook;                    // hook program types
  std::function<void(const netsim::TapContext&)> on_packet;  // socket filter
};

}  // namespace deepflow::ebpf
