#include "ebpf/loader.h"

namespace deepflow::ebpf {

namespace {
kernelsim::HookType hook_type_for(ProgramType type) {
  switch (type) {
    case ProgramType::kKprobe: return kernelsim::HookType::kKprobe;
    case ProgramType::kKretprobe: return kernelsim::HookType::kKretprobe;
    case ProgramType::kTracepoint: return kernelsim::HookType::kTracepointEnter;
    case ProgramType::kTracepointExit:
      return kernelsim::HookType::kTracepointExit;
    case ProgramType::kUprobe: return kernelsim::HookType::kUprobe;
    case ProgramType::kUretprobe: return kernelsim::HookType::kUretprobe;
    case ProgramType::kSocketFilter: break;
  }
  return kernelsim::HookType::kKprobe;
}
}  // namespace

LoadResult Loader::load_syscall(Program program, kernelsim::SyscallAbi abi) {
  const VerifyResult vr = verifier_.verify(program);
  if (!vr.ok) return {false, vr.reason, {}};
  if (program.spec.type == ProgramType::kSocketFilter ||
      program.spec.type == ProgramType::kUprobe ||
      program.spec.type == ProgramType::kUretprobe) {
    return {false, "program type cannot attach to a syscall", {}};
  }
  const kernelsim::HookId hook_id = kernel_->hooks().attach_syscall(
      hook_type_for(program.spec.type), abi, std::move(program.on_hook));
  const u64 link_id = next_link_id_++;
  attached_.push_back({link_id, hook_id});
  return {true, {}, Link{link_id, program.spec.name, program.spec.type}};
}

LoadResult Loader::load_uprobe(Program program, const std::string& symbol) {
  const VerifyResult vr = verifier_.verify(program);
  if (!vr.ok) return {false, vr.reason, {}};
  if (program.spec.type != ProgramType::kUprobe &&
      program.spec.type != ProgramType::kUretprobe) {
    return {false, "not a uprobe program", {}};
  }
  const kernelsim::HookId hook_id = kernel_->hooks().attach_uprobe(
      hook_type_for(program.spec.type), symbol, std::move(program.on_hook));
  const u64 link_id = next_link_id_++;
  attached_.push_back({link_id, hook_id});
  return {true, {}, Link{link_id, program.spec.name, program.spec.type}};
}

LoadResult Loader::load_socket_filter(Program program,
                                      netsim::Device* device) {
  const VerifyResult vr = verifier_.verify(program);
  if (!vr.ok) return {false, vr.reason, {}};
  if (program.spec.type != ProgramType::kSocketFilter) {
    return {false, "not a socket_filter program", {}};
  }
  if (device == nullptr) return {false, "null device", {}};
  device->attach_tap(std::move(program.on_packet));
  const u64 link_id = next_link_id_++;
  attached_.push_back({link_id, 0});
  return {true, {}, Link{link_id, program.spec.name, program.spec.type}};
}

void Loader::unload(const Link& link) {
  for (auto it = attached_.begin(); it != attached_.end(); ++it) {
    if (it->link_id == link.link_id) {
      if (it->hook_id != 0) kernel_->hooks().detach(it->hook_id);
      attached_.erase(it);
      return;
    }
  }
}

}  // namespace deepflow::ebpf
