// BPF map emulation. Real BPF maps have fixed maximum entry counts set at
// load time and fail updates when full; collection logic must tolerate that
// (a busy box can always out-pace a map). The agent's enter-parameter map
// and socket-protocol map are built on these.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace deepflow::ebpf {

/// Counters every map keeps, mirroring bpftool's map statistics.
struct MapStats {
  u64 lookups = 0;
  u64 hits = 0;
  u64 updates = 0;
  u64 deletes = 0;
  u64 full_failures = 0;  // updates rejected because max_entries was reached
};

/// BPF_MAP_TYPE_HASH equivalent with bounded capacity.
template <typename K, typename V, typename Hash = std::hash<K>>
class BpfHashMap {
 public:
  explicit BpfHashMap(size_t max_entries) : max_entries_(max_entries) {}

  /// Insert or overwrite. Fails (returns false) when inserting a new key
  /// into a full map — existing keys can always be updated in place.
  bool update(const K& key, V value) {
    ++stats_.updates;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second = std::move(value);
      return true;
    }
    if (entries_.size() >= max_entries_) {
      ++stats_.full_failures;
      return false;
    }
    entries_.emplace(key, std::move(value));
    return true;
  }

  std::optional<V> lookup(const K& key) const {
    ++stats_.lookups;
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    ++stats_.hits;
    return it->second;
  }

  /// Lookup and remove in one step — the agent's enter/exit merge uses this
  /// (exit consumes the stored enter parameters).
  std::optional<V> lookup_and_delete(const K& key) {
    ++stats_.lookups;
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    ++stats_.hits;
    V value = std::move(it->second);
    entries_.erase(it);
    ++stats_.deletes;
    return value;
  }

  bool erase(const K& key) {
    const bool erased = entries_.erase(key) > 0;
    if (erased) ++stats_.deletes;
    return erased;
  }

  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  const MapStats& stats() const { return stats_; }

 private:
  size_t max_entries_;
  std::unordered_map<K, V, Hash> entries_;
  mutable MapStats stats_;
};

/// BPF_MAP_TYPE_ARRAY equivalent: fixed size, zero-initialized.
template <typename V>
class BpfArrayMap {
 public:
  explicit BpfArrayMap(size_t size) : values_(size) {}

  V* lookup(size_t index) {
    ++stats_.lookups;
    if (index >= values_.size()) return nullptr;
    ++stats_.hits;
    return &values_[index];
  }

  size_t size() const { return values_.size(); }
  const MapStats& stats() const { return stats_; }

 private:
  std::vector<V> values_;
  mutable MapStats stats_;
};

}  // namespace deepflow::ebpf
