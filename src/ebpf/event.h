// Fixed-layout event records emitted by BPF collection programs into the
// perf buffer. These are the wire format between "kernel space" and the
// DeepFlow agent's user-space pipeline, so they are PODs with bounded
// inline storage (a BPF program cannot allocate).
#pragma once

#include <algorithm>
#include <cstring>
#include <string_view>

#include "common/five_tuple.h"
#include "common/types.h"
#include "kernelsim/syscall_abi.h"
#include "netsim/device.h"

namespace deepflow::ebpf {

constexpr size_t kCommLen = 16;     // TASK_COMM_LEN
constexpr size_t kPayloadLen = 256; // bounded payload snapshot

/// One completed traced syscall: enter and exit information already merged
/// kernel-side via the (pid, tid) hash map (paper §3.3.1, phase one).
struct SyscallEventRecord {
  // Program information.
  Pid pid = 0;
  Tid tid = 0;
  CoroutineId coroutine_id = 0;
  char comm[kCommLen] = {};

  // Network information.
  SocketId socket_id = 0;
  FiveTuple tuple;
  TcpSeq tcp_seq = 0;

  // Tracing information.
  TimestampNs enter_ts = 0;
  TimestampNs exit_ts = 0;
  kernelsim::Direction direction = kernelsim::Direction::kIngress;
  u32 cpu = 0;  // CPU that emitted the record (drain order ≠ event order)

  // Syscall information.
  kernelsim::SyscallAbi abi = kernelsim::SyscallAbi::kRead;
  u64 total_bytes = 0;
  u16 payload_len = 0;
  char payload[kPayloadLen] = {};
  bool is_first_of_message = true;

  std::string_view payload_view() const {
    return std::string_view(payload, payload_len);
  }

  void set_comm(std::string_view name) {
    const size_t n = std::min(name.size(), kCommLen - 1);
    std::memcpy(comm, name.data(), n);
    comm[n] = '\0';
  }

  void set_payload(std::string_view bytes) {
    payload_len = static_cast<u16>(std::min(bytes.size(), kPayloadLen));
    std::memcpy(payload, bytes.data(), payload_len);
  }
};

/// One packet observation from a cBPF/AF_PACKET tap on a network device —
/// the raw material of DeepFlow's network (device-level) spans.
struct PacketEventRecord {
  u32 device_id = 0;
  netsim::DeviceKind device_kind = netsim::DeviceKind::kVeth;
  char device_name[32] = {};
  u32 node_id = 0;
  FiveTuple tuple;
  TcpSeq tcp_seq = 0;
  u64 total_bytes = 0;
  TimestampNs timestamp = 0;
  u32 cpu = 0;  // CPU the capture ran on (drain order != event order)
  bool is_retransmission = false;
  u16 payload_len = 0;
  char payload[kPayloadLen] = {};

  std::string_view payload_view() const {
    return std::string_view(payload, payload_len);
  }

  void set_device_name(std::string_view name) {
    const size_t n = std::min(name.size(), sizeof(device_name) - 1);
    std::memcpy(device_name, name.data(), n);
    device_name[n] = '\0';
  }

  void set_payload(std::string_view bytes) {
    payload_len = static_cast<u16>(std::min(bytes.size(), kPayloadLen));
    std::memcpy(payload, bytes.data(), payload_len);
  }
};

}  // namespace deepflow::ebpf
