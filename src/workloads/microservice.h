// One running service replica: a pod-backed process with a worker-thread
// pool (or goroutine-style coroutines), serving its protocol on inbound
// connections and issuing sequential downstream calls on outbound links.
// All I/O goes through the simulated kernel's traced syscalls, so the
// tracing plane observes exactly what a real deployment would produce.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rand.h"
#include "netsim/cluster.h"
#include "otelsim/tracer.h"
#include "workloads/payloads.h"
#include "workloads/spec.h"

namespace deepflow::workloads {

class ServiceInstance {
 public:
  ServiceInstance(netsim::Cluster* cluster, const ServiceSpec* spec,
                  size_t service_index, size_t replica_index,
                  netsim::PodHandle pod, Rng* rng);

  const netsim::PodHandle& pod() const { return pod_; }
  const ServiceSpec& spec() const { return *spec_; }
  size_t replica_index() const { return replica_index_; }

  /// Server side: start serving the given accepted connection.
  void accept_connection(const netsim::ConnectionHandle& conn);

  /// Client side: install the outbound link for call slot `call_index`.
  /// `conns` holds one established connection per usable path (pipeline
  /// protocols treat each as one-outstanding; parallel protocols multiplex).
  void add_link(size_t call_index, protocols::L7Protocol protocol,
                protocols::SessionMatchMode mode, std::string endpoint,
                std::vector<netsim::ConnectionHandle> conns);

  /// Attach an intrusive SDK tracer (Jaeger/Zipkin-style baselines).
  void set_tracer(std::unique_ptr<otelsim::Tracer> tracer);

  /// Fault injection: force this replica to answer with `status`
  /// (e.g. 404 for the §4.1.1 Nginx case). 0 restores normal behaviour.
  void set_fault_status(u32 status) { fault_status_ = status; }
  /// Fault injection: multiply this replica's compute time (backlog case).
  void set_slowdown(double factor) { slowdown_ = factor; }

  u64 handled() const { return handled_; }
  u64 failed_calls() const { return failed_calls_; }

 private:
  struct RequestCtx {
    u64 id = 0;
    SocketId inbound_socket = 0;
    size_t thread_index = 0;
    Tid tid = 0;
    CoroutineId coroutine = 0;
    TimestampNs cursor = 0;
    InboundRequest inbound;
    std::string x_request_id;
    std::string traceparent_out;
    otelsim::ActiveSpan otel;
    bool otel_active = false;
    size_t next_call = 0;
    bool downstream_failed = false;
  };

  struct Link {
    protocols::L7Protocol protocol = protocols::L7Protocol::kHttp1;
    protocols::SessionMatchMode mode = protocols::SessionMatchMode::kPipeline;
    std::string endpoint;
    std::vector<netsim::ConnectionHandle> conns;
    std::vector<bool> busy;        // pipeline: one outstanding per conn
    std::vector<bool> dead;        // reset by a fault
    std::deque<u64> waiting;       // ctx ids queued for a free conn
    std::unordered_map<SocketId, u64> pending_by_socket;   // pipeline
    /// parallel: stream id -> (ctx id, socket the call went out on)
    std::unordered_map<u64, std::pair<u64, SocketId>> pending_by_stream;
    u64 next_stream = 1;
    size_t rr = 0;
  };

  kernelsim::Kernel* kernel() { return pod_.kernel; }
  kernelsim::SyscallAbi ingress_abi() const;
  kernelsim::SyscallAbi egress_abi() const;

  void on_inbound(SocketId server_socket,
                  const kernelsim::WireMessage& message, TimestampNs ts);
  void start_request(SocketId server_socket, kernelsim::WireMessage message,
                     TimestampNs start, size_t thread_index);
  void issue_call_or_finish(RequestCtx& ctx);
  void issue_call(RequestCtx& ctx);
  void send_on_link(RequestCtx& ctx, Link& link, size_t conn_index);
  void on_link_response(size_t call_index, SocketId client_socket,
                        const kernelsim::WireMessage& message, TimestampNs ts);
  void on_link_reset(size_t call_index, SocketId client_socket,
                     TimestampNs ts);
  void resume_after_call(u64 ctx_id, SocketId client_socket,
                         const kernelsim::WireMessage* response,
                         TimestampNs ts);
  void finish_request(RequestCtx& ctx);
  void release_thread(size_t thread_index, TimestampNs at);
  void run_coroutine_scope(RequestCtx& ctx, CoroutineId coroutine);

  netsim::Cluster* cluster_;
  const ServiceSpec* spec_;
  size_t service_index_;
  size_t replica_index_;
  netsim::PodHandle pod_;
  Rng* rng_;

  std::vector<Tid> threads_;
  std::vector<TimestampNs> free_at_;
  struct QueuedInbound {
    SocketId socket;
    kernelsim::WireMessage message;
    TimestampNs arrival;
  };
  std::deque<QueuedInbound> backlog_;

  std::vector<Link> links_;  // one per CallSpec
  std::unordered_map<u64, std::unique_ptr<RequestCtx>> active_;
  std::unique_ptr<otelsim::Tracer> tracer_;
  u32 fault_status_ = 0;
  double slowdown_ = 1.0;
  u64 next_ctx_id_ = 1;
  u64 next_xrid_ = 1;
  u64 handled_ = 0;
  u64 failed_calls_ = 0;
  size_t rr_thread_ = 0;
};

}  // namespace deepflow::workloads
