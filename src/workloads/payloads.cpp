#include "workloads/payloads.h"

#include "protocols/amqp.h"
#include "protocols/dns.h"
#include "protocols/dubbo.h"
#include "protocols/http1.h"
#include "protocols/http2.h"
#include "protocols/kafka.h"
#include "protocols/mqtt.h"
#include "protocols/mysql.h"
#include "protocols/parser.h"
#include "protocols/redis.h"

namespace deepflow::workloads {

using namespace deepflow::protocols;

std::string build_request_payload(L7Protocol protocol,
                                  const std::string& endpoint, u64 stream_id,
                                  const RequestContext& ctx) {
  switch (protocol) {
    case L7Protocol::kHttp1: {
      std::vector<HttpHeader> headers{{"Host", "svc"}};
      if (!ctx.x_request_id.empty()) {
        headers.emplace_back("X-Request-ID", ctx.x_request_id);
      }
      if (!ctx.traceparent.empty()) {
        headers.emplace_back("traceparent", ctx.traceparent);
      }
      return build_http1_request("GET", endpoint, headers);
    }
    case L7Protocol::kHttp2: {
      std::vector<Http2Header> headers;
      if (!ctx.x_request_id.empty()) {
        headers.emplace_back("x-request-id", ctx.x_request_id);
      }
      if (!ctx.traceparent.empty()) {
        headers.emplace_back("traceparent", ctx.traceparent);
      }
      // Client-initiated streams are odd-numbered.
      return build_http2_request(static_cast<u32>(stream_id * 2 + 1), "GET",
                                 endpoint, headers);
    }
    case L7Protocol::kDns:
      return build_dns_query(static_cast<u16>(stream_id), endpoint);
    case L7Protocol::kRedis:
      return build_redis_command({"GET", endpoint});
    case L7Protocol::kMysql:
      return build_mysql_query("SELECT * FROM " + endpoint + " LIMIT 1");
    case L7Protocol::kKafka:
      return build_kafka_request(KafkaApi::kProduce,
                                 static_cast<u32>(stream_id), "df-client",
                                 endpoint);
    case L7Protocol::kMqtt:
      return build_mqtt_publish(endpoint, "payload");
    case L7Protocol::kDubbo:
      return build_dubbo_request(stream_id, endpoint, "invoke");
    case L7Protocol::kAmqp:
      return build_amqp_publish(1, endpoint);
    case L7Protocol::kUnknown:
      break;
  }
  return "?";
}

std::string build_response_payload(L7Protocol protocol, u32 status,
                                   u64 stream_id, const RequestContext& ctx) {
  const bool ok = status < 400;
  switch (protocol) {
    case L7Protocol::kHttp1: {
      std::vector<HttpHeader> headers;
      if (!ctx.x_request_id.empty()) {
        headers.emplace_back("X-Request-ID", ctx.x_request_id);
      }
      return build_http1_response(status, headers, ok ? "ok" : "error");
    }
    case L7Protocol::kHttp2: {
      std::vector<Http2Header> headers;
      if (!ctx.x_request_id.empty()) {
        headers.emplace_back("x-request-id", ctx.x_request_id);
      }
      return build_http2_response(static_cast<u32>(stream_id * 2 + 1), status,
                                  headers);
    }
    case L7Protocol::kDns:
      return build_dns_response(static_cast<u16>(stream_id), "svc",
                                ok ? 0 : 2 /*SERVFAIL*/);
    case L7Protocol::kRedis:
      return ok ? build_redis_ok() : build_redis_error("backend failure");
    case L7Protocol::kMysql:
      return ok ? build_mysql_ok() : build_mysql_error(1064, "bad query");
    case L7Protocol::kKafka:
      return build_kafka_response(static_cast<u32>(stream_id), ok ? 0 : 7);
    case L7Protocol::kMqtt:
      return build_mqtt_puback();
    case L7Protocol::kDubbo:
      return build_dubbo_response(stream_id, ok ? 20 : 70);
    case L7Protocol::kAmqp:
      return ok ? build_amqp_ack(1) : build_amqp_close(1, 312, "NO_ROUTE");
    case L7Protocol::kUnknown:
      break;
  }
  return "?";
}

InboundRequest parse_inbound(L7Protocol protocol, const std::string& payload) {
  InboundRequest inbound;
  // Reuse the registry parsers: the application-side decode and the tracing
  // plane agree on the wire format by construction.
  static const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  const ProtocolParser* parser = registry.parser_for(protocol);
  if (parser == nullptr) return inbound;
  const auto parsed = parser->parse(payload);
  if (!parsed.has_value()) return inbound;
  inbound.endpoint = parsed->endpoint;
  // Undo the odd-numbering mapping for HTTP/2 so request/response builders
  // stay symmetric.
  inbound.stream_id = protocol == L7Protocol::kHttp2
                          ? (parsed->stream_id - 1) / 2
                          : parsed->stream_id;
  inbound.x_request_id = parsed->x_request_id;
  inbound.traceparent = parsed->trace_context;
  return inbound;
}

u64 response_stream_id(L7Protocol protocol, const std::string& payload) {
  static const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  const ProtocolParser* parser = registry.parser_for(protocol);
  if (parser == nullptr) return 0;
  const auto parsed = parser->parse(payload);
  if (!parsed.has_value()) return 0;
  return protocol == L7Protocol::kHttp2 ? (parsed->stream_id - 1) / 2
                                        : parsed->stream_id;
}

bool response_ok(L7Protocol protocol, const std::string& payload) {
  static const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  const ProtocolParser* parser = registry.parser_for(protocol);
  if (parser == nullptr) return true;
  const auto parsed = parser->parse(payload);
  return parsed.has_value() ? parsed->ok : true;
}

}  // namespace deepflow::workloads
