// Declarative description of a microservice application: services, their
// replicas, serving protocol, compute cost, threading model, and downstream
// call graph. The App builder (app.h) turns a vector of these into running
// pods wired through the simulated cluster.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "netsim/resource.h"
#include "protocols/message.h"

namespace deepflow::workloads {

/// One downstream call a service makes while handling a request. Calls are
/// issued sequentially (the common blocking-RPC style of the paper's demo
/// applications).
struct CallSpec {
  size_t target_service = 0;   // index into the App's service list
  std::string endpoint = "/";  // resource passed to the target
};

struct ServiceSpec {
  std::string name;
  u32 replicas = 1;
  /// Worker threads per replica (synchronous model: a thread is held for
  /// the whole residence time of a request).
  u32 threads = 4;
  /// CPU consumed per request before downstream calls are issued.
  DurationNs compute_ns = 500 * kMicrosecond;
  /// Relative jitter of the compute time.
  double compute_jitter = 0.15;
  /// Protocol this service serves (clients build matching payloads).
  protocols::L7Protocol protocol = protocols::L7Protocol::kHttp1;
  /// Proxies (Nginx/Envoy/HAProxy style) generate an X-Request-ID when the
  /// inbound request lacks one and propagate it downstream — the mechanism
  /// DeepFlow leans on for cross-thread intra-component association.
  bool is_proxy = false;
  /// Goroutine-style runtime: per-request coroutines instead of a blocking
  /// thread pool; downstream calls run on child coroutines.
  bool use_coroutines = false;
  /// Serve over TLS (kernel hooks see ciphertext; only SSL uprobes see
  /// plaintext).
  bool tls = false;
  std::vector<CallSpec> calls;
  /// Self-defined pod labels (version, commit-id, ...), visible to tag
  /// correlation.
  std::vector<netsim::Label> labels;
};

}  // namespace deepflow::workloads
