#include "workloads/microservice.h"

#include <limits>

#include "common/logging.h"

namespace deepflow::workloads {

namespace {
constexpr TimestampNs kBusy = std::numeric_limits<TimestampNs>::max();

// Services cycle through the ten Table 3 ABIs so that every instrumented
// entry point carries real traffic.
constexpr kernelsim::SyscallAbi kIngressChoices[] = {
    kernelsim::SyscallAbi::kRead, kernelsim::SyscallAbi::kRecvFrom,
    kernelsim::SyscallAbi::kRecvMsg, kernelsim::SyscallAbi::kReadV,
    kernelsim::SyscallAbi::kRecvMmsg};
constexpr kernelsim::SyscallAbi kEgressChoices[] = {
    kernelsim::SyscallAbi::kWrite, kernelsim::SyscallAbi::kSendTo,
    kernelsim::SyscallAbi::kSendMsg, kernelsim::SyscallAbi::kWriteV,
    kernelsim::SyscallAbi::kSendMmsg};
}  // namespace

ServiceInstance::ServiceInstance(netsim::Cluster* cluster,
                                 const ServiceSpec* spec, size_t service_index,
                                 size_t replica_index, netsim::PodHandle pod,
                                 Rng* rng)
    : cluster_(cluster),
      spec_(spec),
      service_index_(service_index),
      replica_index_(replica_index),
      pod_(pod),
      rng_(rng) {
  threads_.reserve(spec_->threads);
  for (u32 i = 0; i < spec_->threads; ++i) {
    threads_.push_back(kernel()->tasks().create_thread(pod_.pid));
  }
  free_at_.assign(threads_.size(), 0);
  links_.resize(spec_->calls.size());
}

kernelsim::SyscallAbi ServiceInstance::ingress_abi() const {
  return kIngressChoices[service_index_ % 5];
}

kernelsim::SyscallAbi ServiceInstance::egress_abi() const {
  return kEgressChoices[service_index_ % 5];
}

void ServiceInstance::accept_connection(const netsim::ConnectionHandle& conn) {
  const SocketId server_socket = conn.server_socket;
  cluster_->fabric().set_delivery_handler(
      server_socket,
      [this, server_socket](const kernelsim::WireMessage& message,
                            TimestampNs ts) {
        on_inbound(server_socket, message, ts);
      });
}

void ServiceInstance::add_link(size_t call_index,
                               protocols::L7Protocol protocol,
                               protocols::SessionMatchMode mode,
                               std::string endpoint,
                               std::vector<netsim::ConnectionHandle> conns) {
  Link& link = links_[call_index];
  link.protocol = protocol;
  link.mode = mode;
  link.endpoint = std::move(endpoint);
  link.conns = std::move(conns);
  link.busy.assign(link.conns.size(), false);
  link.dead.assign(link.conns.size(), false);
  for (size_t i = 0; i < link.conns.size(); ++i) {
    const SocketId client_socket = link.conns[i].client_socket;
    cluster_->fabric().set_delivery_handler(
        client_socket,
        [this, call_index, client_socket](const kernelsim::WireMessage& msg,
                                          TimestampNs ts) {
          on_link_response(call_index, client_socket, msg, ts);
        });
    cluster_->fabric().set_reset_handler(
        client_socket, [this, call_index, client_socket](TimestampNs ts) {
          on_link_reset(call_index, client_socket, ts);
        });
  }
}

void ServiceInstance::set_tracer(std::unique_ptr<otelsim::Tracer> tracer) {
  tracer_ = std::move(tracer);
}

void ServiceInstance::on_inbound(SocketId server_socket,
                                 const kernelsim::WireMessage& message,
                                 TimestampNs ts) {
  if (spec_->use_coroutines) {
    // Goroutine model: unbounded logical concurrency; round-robin the
    // kernel threads that back the runtime.
    const size_t thread_index = rr_thread_++ % threads_.size();
    start_request(server_socket, message, ts, thread_index);
    return;
  }
  // Synchronous thread pool: earliest-free thread, else backlog.
  size_t best = threads_.size();
  for (size_t i = 0; i < free_at_.size(); ++i) {
    if (free_at_[i] <= ts && (best == threads_.size() ||
                              free_at_[i] < free_at_[best])) {
      best = i;
    }
  }
  if (best == threads_.size()) {
    backlog_.push_back(QueuedInbound{server_socket, message, ts});
    return;
  }
  start_request(server_socket, message, ts, best);
}

void ServiceInstance::start_request(SocketId server_socket,
                                    kernelsim::WireMessage message,
                                    TimestampNs start, size_t thread_index) {
  if (!spec_->use_coroutines) free_at_[thread_index] = kBusy;

  auto owned = std::make_unique<RequestCtx>();
  RequestCtx& ctx = *owned;
  ctx.id = next_ctx_id_++;
  ctx.inbound_socket = server_socket;
  ctx.thread_index = thread_index;
  ctx.tid = threads_[thread_index];

  if (spec_->use_coroutines) {
    ctx.coroutine = kernel()->tasks().create_coroutine(pod_.pid);
    kernel()->tasks().set_running_coroutine(ctx.tid, ctx.coroutine);
  }

  const auto recv =
      kernel()->sys_recv(ctx.tid, server_socket, message, ingress_abi(), start);
  ctx.cursor = recv.exit_ts;

  ctx.inbound = parse_inbound(spec_->protocol, message.app_payload);
  ctx.x_request_id = ctx.inbound.x_request_id;
  if (spec_->is_proxy && ctx.x_request_id.empty()) {
    // Proxies mint the X-Request-ID that stitches their worker threads
    // together (HAProxy unique-id / Nginx request_id / Envoy x-request-id).
    ctx.x_request_id = spec_->name + "-" +
                       std::to_string(pod_.pod) + "-" +
                       std::to_string(next_xrid_++);
  }

  if (tracer_ != nullptr) {
    ctx.otel = tracer_->start_span(spec_->name + ":" + ctx.inbound.endpoint,
                                   ctx.inbound.traceparent, ctx.cursor);
    ctx.otel_active = true;
    ctx.cursor += tracer_->config().cost_per_span_ns;
    ctx.traceparent_out = tracer_->inject(ctx.otel);
  }
  // Un-instrumented services do NOT propagate third-party context — that
  // broken propagation is exactly the blind spot the paper targets.

  const double compute = rng_->jittered(
      static_cast<double>(spec_->compute_ns) * slowdown_, spec_->compute_jitter);
  ctx.cursor += static_cast<DurationNs>(compute);

  if (spec_->use_coroutines) {
    kernel()->tasks().set_running_coroutine(ctx.tid, 0);
  }

  active_.emplace(ctx.id, std::move(owned));
  issue_call_or_finish(ctx);
}

void ServiceInstance::issue_call_or_finish(RequestCtx& ctx) {
  if (ctx.next_call >= links_.size()) {
    finish_request(ctx);
    return;
  }
  issue_call(ctx);
}

void ServiceInstance::issue_call(RequestCtx& ctx) {
  Link& link = links_[ctx.next_call];
  if (link.conns.empty()) {  // unwired call slot: skip
    ++ctx.next_call;
    issue_call_or_finish(ctx);
    return;
  }

  if (link.mode == protocols::SessionMatchMode::kParallel) {
    // Multiplexing protocols: round-robin a connection, any number of
    // outstanding calls.
    for (size_t probe = 0; probe < link.conns.size(); ++probe) {
      const size_t index = link.rr++ % link.conns.size();
      if (!link.dead[index]) {
        send_on_link(ctx, link, index);
        return;
      }
    }
    // Every path dead: fail the call.
    ++failed_calls_;
    ctx.downstream_failed = true;
    ++ctx.next_call;
    issue_call_or_finish(ctx);
    return;
  }

  // Pipeline protocols: one outstanding request per connection (keep-alive
  // without pipelining, the behaviour of real HTTP/1.1 clients).
  for (size_t probe = 0; probe < link.conns.size(); ++probe) {
    const size_t index = link.rr++ % link.conns.size();
    if (!link.busy[index] && !link.dead[index]) {
      send_on_link(ctx, link, index);
      return;
    }
  }
  link.waiting.push_back(ctx.id);  // resumes when a connection frees
}

void ServiceInstance::send_on_link(RequestCtx& ctx, Link& link,
                                   size_t conn_index) {
  const netsim::ConnectionHandle& conn = link.conns[conn_index];
  const u64 stream = link.next_stream++;

  RequestContext out_ctx;
  out_ctx.x_request_id = ctx.x_request_id;
  out_ctx.traceparent = ctx.traceparent_out;
  std::string payload =
      build_request_payload(link.protocol, link.endpoint, stream, out_ctx);

  CoroutineId call_coroutine = 0;
  if (spec_->use_coroutines) {
    // Downstream calls run on child coroutines of the request coroutine;
    // DeepFlow's pseudo-thread structure must still unify them.
    call_coroutine =
        kernel()->tasks().create_coroutine(pod_.pid, ctx.coroutine);
    kernel()->tasks().set_running_coroutine(ctx.tid, call_coroutine);
  }

  const auto sent = kernel()->sys_send(ctx.tid, conn.client_socket,
                                       std::move(payload), egress_abi(),
                                       ctx.cursor);
  ctx.cursor = sent.exit_ts;

  if (spec_->use_coroutines) {
    kernel()->tasks().set_running_coroutine(ctx.tid, 0);
  }

  if (link.mode == protocols::SessionMatchMode::kParallel) {
    link.pending_by_stream[stream] = {ctx.id, conn.client_socket};
  } else {
    link.busy[conn_index] = true;
    link.pending_by_socket[conn.client_socket] = ctx.id;
  }
}

void ServiceInstance::on_link_response(size_t call_index,
                                       SocketId client_socket,
                                       const kernelsim::WireMessage& message,
                                       TimestampNs ts) {
  Link& link = links_[call_index];
  u64 ctx_id = 0;

  if (link.mode == protocols::SessionMatchMode::kParallel) {
    const u64 stream = response_stream_id(link.protocol, message.app_payload);
    const auto it = link.pending_by_stream.find(stream);
    if (it == link.pending_by_stream.end()) return;  // late/duplicate
    ctx_id = it->second.first;
    link.pending_by_stream.erase(it);
  } else {
    const auto it = link.pending_by_socket.find(client_socket);
    if (it == link.pending_by_socket.end()) return;
    ctx_id = it->second;
    link.pending_by_socket.erase(it);
    // Free the connection; hand it to a waiter if any.
    for (size_t i = 0; i < link.conns.size(); ++i) {
      if (link.conns[i].client_socket == client_socket) {
        link.busy[i] = false;
        if (!link.waiting.empty()) {
          const u64 waiter_id = link.waiting.front();
          link.waiting.pop_front();
          if (const auto waiter = active_.find(waiter_id);
              waiter != active_.end()) {
            RequestCtx& wctx = *waiter->second;
            wctx.cursor = std::max(wctx.cursor, ts);
            send_on_link(wctx, link, i);
          }
        }
        break;
      }
    }
  }

  if (!response_ok(link.protocol, message.app_payload)) {
    if (const auto it = active_.find(ctx_id); it != active_.end()) {
      it->second->downstream_failed = true;
    }
  }
  resume_after_call(ctx_id, client_socket, &message, ts);
}

void ServiceInstance::on_link_reset(size_t call_index, SocketId client_socket,
                                    TimestampNs ts) {
  Link& link = links_[call_index];
  for (size_t i = 0; i < link.conns.size(); ++i) {
    if (link.conns[i].client_socket == client_socket) link.dead[i] = true;
  }
  // Fail the call(s) outstanding on this connection.
  if (const auto it = link.pending_by_socket.find(client_socket);
      it != link.pending_by_socket.end()) {
    const u64 ctx_id = it->second;
    link.pending_by_socket.erase(it);
    ++failed_calls_;
    if (const auto actx = active_.find(ctx_id); actx != active_.end()) {
      actx->second->downstream_failed = true;
    }
    resume_after_call(ctx_id, client_socket, nullptr, ts);
  }
  for (auto it = link.pending_by_stream.begin();
       it != link.pending_by_stream.end();) {
    if (it->second.second == client_socket) {
      const u64 ctx_id = it->second.first;
      it = link.pending_by_stream.erase(it);
      ++failed_calls_;
      if (const auto actx = active_.find(ctx_id); actx != active_.end()) {
        actx->second->downstream_failed = true;
      }
      resume_after_call(ctx_id, client_socket, nullptr, ts);
    } else {
      ++it;
    }
  }
}

void ServiceInstance::resume_after_call(u64 ctx_id, SocketId client_socket,
                                        const kernelsim::WireMessage* response,
                                        TimestampNs ts) {
  const auto it = active_.find(ctx_id);
  if (it == active_.end()) return;
  RequestCtx& ctx = *it->second;
  ctx.cursor = std::max(ctx.cursor, ts);

  if (response != nullptr) {
    if (spec_->use_coroutines && ctx.coroutine != 0) {
      kernel()->tasks().set_running_coroutine(ctx.tid, ctx.coroutine);
    }
    const auto recv = kernel()->sys_recv(ctx.tid, client_socket, *response,
                                         ingress_abi(), ctx.cursor);
    ctx.cursor = recv.exit_ts;
    if (spec_->use_coroutines) {
      kernel()->tasks().set_running_coroutine(ctx.tid, 0);
    }
  }

  ++ctx.next_call;
  issue_call_or_finish(ctx);
}

void ServiceInstance::finish_request(RequestCtx& ctx) {
  u32 status = 200;
  if (fault_status_ != 0) {
    status = fault_status_;
  } else if (ctx.downstream_failed) {
    status = 502;
  }

  RequestContext out_ctx;
  out_ctx.x_request_id = ctx.x_request_id;
  std::string payload = build_response_payload(
      spec_->protocol, status, ctx.inbound.stream_id, out_ctx);

  if (spec_->use_coroutines && ctx.coroutine != 0) {
    kernel()->tasks().set_running_coroutine(ctx.tid, ctx.coroutine);
  }
  const auto sent = kernel()->sys_send(ctx.tid, ctx.inbound_socket,
                                       std::move(payload), egress_abi(),
                                       ctx.cursor);
  if (sent.exit_ts != 0) ctx.cursor = sent.exit_ts;
  if (spec_->use_coroutines) {
    kernel()->tasks().set_running_coroutine(ctx.tid, 0);
  }

  if (ctx.otel_active && tracer_ != nullptr) {
    tracer_->end_span(ctx.otel, ctx.cursor, status < 400, status);
  }
  ++handled_;

  if (!spec_->use_coroutines) {
    const size_t thread_index = ctx.thread_index;
    const TimestampNs free_time = ctx.cursor;
    cluster_->loop().schedule_at(free_time, [this, thread_index, free_time] {
      release_thread(thread_index, free_time);
    });
  }
  active_.erase(ctx.id);
}

void ServiceInstance::release_thread(size_t thread_index, TimestampNs at) {
  free_at_[thread_index] = at;
  if (backlog_.empty()) return;
  QueuedInbound next = std::move(backlog_.front());
  backlog_.pop_front();
  start_request(next.socket, std::move(next.message),
                std::max(at, next.arrival), thread_index);
}

}  // namespace deepflow::workloads
