#include "workloads/topologies.h"

namespace deepflow::workloads {

using protocols::L7Protocol;

namespace {

Topology start(u64 seed, kernelsim::KernelConfig kernel_config, int nodes) {
  Topology topo;
  topo.cluster = std::make_unique<netsim::Cluster>(seed, kernel_config);
  for (int i = 1; i <= nodes; ++i) {
    topo.cluster->add_node("node-" + std::to_string(i));
  }
  topo.app = std::make_unique<App>(topo.cluster.get(), seed);
  return topo;
}

ServiceSpec http_service(std::string name, DurationNs compute, u32 threads,
                         u32 replicas = 1) {
  ServiceSpec spec;
  spec.name = std::move(name);
  spec.compute_ns = compute;
  spec.threads = threads;
  spec.replicas = replicas;
  return spec;
}

}  // namespace

Topology make_spring_boot_demo(u64 seed,
                               kernelsim::KernelConfig kernel_config) {
  Topology topo = start(seed, kernel_config, 3);
  App& app = *topo.app;

  ServiceSpec mysql;
  mysql.name = "mysql";
  mysql.protocol = L7Protocol::kMysql;
  mysql.compute_ns = 400 * kMicrosecond;
  mysql.threads = 16;
  const size_t mysql_id = app.add_service(mysql);

  ServiceSpec redis;
  redis.name = "redis";
  redis.protocol = L7Protocol::kRedis;
  redis.compute_ns = 80 * kMicrosecond;
  redis.threads = 8;
  const size_t redis_id = app.add_service(redis);

  ServiceSpec cart = http_service("cart", 600 * kMicrosecond, 8);
  cart.labels = {{"version", "v2"}, {"team", "commerce"}};
  cart.calls = {{redis_id, "cart:items"}};
  const size_t cart_id = app.add_service(cart);

  ServiceSpec product = http_service("product", 700 * kMicrosecond, 8);
  product.labels = {{"version", "v1"}, {"team", "catalog"}};
  product.calls = {{mysql_id, "products"}};
  const size_t product_id = app.add_service(product);

  ServiceSpec front = http_service("front", 500 * kMicrosecond, 12);
  front.calls = {{cart_id, "/cart"}, {product_id, "/product"}};
  const size_t front_id = app.add_service(front);

  ServiceSpec gateway = http_service("gateway", 150 * kMicrosecond, 16);
  gateway.is_proxy = true;
  gateway.calls = {{front_id, "/home"}};
  const size_t gateway_id = app.add_service(gateway);

  app.build();
  topo.entry = gateway_id;
  topo.services = {{"mysql", mysql_id},     {"redis", redis_id},
                   {"cart", cart_id},       {"product", product_id},
                   {"front", front_id},     {"gateway", gateway_id}};
  return topo;
}

Topology make_bookinfo(u64 seed, kernelsim::KernelConfig kernel_config) {
  Topology topo = start(seed, kernel_config, 3);
  App& app = *topo.app;

  const auto sidecar = [](std::string name, size_t target) {
    ServiceSpec spec;
    spec.name = std::move(name);
    spec.is_proxy = true;
    spec.compute_ns = 80 * kMicrosecond;
    spec.threads = 8;
    spec.calls = {{target, "/"}};
    return spec;
  };

  ServiceSpec ratings = http_service("ratings", 300 * kMicrosecond, 6);
  const size_t ratings_id = app.add_service(ratings);
  const size_t envoy_ratings_id =
      app.add_service(sidecar("envoy-ratings", ratings_id));

  ServiceSpec reviews = http_service("reviews", 500 * kMicrosecond, 8);
  reviews.labels = {{"version", "v3"}};
  reviews.calls = {{envoy_ratings_id, "/ratings"}};
  const size_t reviews_id = app.add_service(reviews);
  const size_t envoy_reviews_id =
      app.add_service(sidecar("envoy-reviews", reviews_id));

  ServiceSpec details = http_service("details", 250 * kMicrosecond, 6);
  const size_t details_id = app.add_service(details);
  const size_t envoy_details_id =
      app.add_service(sidecar("envoy-details", details_id));

  ServiceSpec productpage = http_service("productpage", 700 * kMicrosecond, 12);
  productpage.calls = {{envoy_details_id, "/details"},
                       {envoy_reviews_id, "/reviews"}};
  const size_t productpage_id = app.add_service(productpage);
  const size_t envoy_pp_id =
      app.add_service(sidecar("envoy-productpage", productpage_id));

  ServiceSpec gateway = http_service("istio-ingress", 120 * kMicrosecond, 16);
  gateway.is_proxy = true;
  gateway.calls = {{envoy_pp_id, "/productpage"}};
  const size_t gateway_id = app.add_service(gateway);

  app.build();
  topo.entry = gateway_id;
  topo.services = {{"ratings", ratings_id},
                   {"envoy-ratings", envoy_ratings_id},
                   {"reviews", reviews_id},
                   {"envoy-reviews", envoy_reviews_id},
                   {"details", details_id},
                   {"envoy-details", envoy_details_id},
                   {"productpage", productpage_id},
                   {"envoy-productpage", envoy_pp_id},
                   {"gateway", gateway_id}};
  return topo;
}

Topology make_nginx_single_vm(u64 seed, kernelsim::KernelConfig kernel_config) {
  Topology topo = start(seed, kernel_config, 1);
  App& app = *topo.app;
  // Appendix B: Nginx's computational workload is ~1 ms, 8 vCPUs worth of
  // workers on one VM.
  ServiceSpec nginx = http_service("nginx", 1 * kMillisecond, 8);
  nginx.is_proxy = true;
  topo.entry = app.add_service(nginx);
  app.build();
  topo.services = {{"nginx", topo.entry}};
  return topo;
}

Topology make_nginx_ingress_case(u32 faulty_replica, u64 seed,
                                 kernelsim::KernelConfig kernel_config) {
  Topology topo = start(seed, kernel_config, 3);
  App& app = *topo.app;

  ServiceSpec db;
  db.name = "orders-db";
  db.protocol = L7Protocol::kMysql;
  db.compute_ns = 500 * kMicrosecond;
  db.threads = 12;
  const size_t db_id = app.add_service(db);

  ServiceSpec api = http_service("api", 600 * kMicrosecond, 8, 2);
  api.calls = {{db_id, "orders"}};
  const size_t api_id = app.add_service(api);

  ServiceSpec web = http_service("web", 400 * kMicrosecond, 8, 2);
  web.calls = {{api_id, "/api/orders"}};
  const size_t web_id = app.add_service(web);

  ServiceSpec ingress = http_service("nginx-ingress", 150 * kMicrosecond, 8, 3);
  ingress.is_proxy = true;
  ingress.calls = {{web_id, "/orders"}};
  const size_t ingress_id = app.add_service(ingress);

  app.build();
  if (faulty_replica < 3) {
    // The broken pod of §4.1.1: answers 404 instead of forwarding properly.
    app.instance(ingress_id, faulty_replica)->set_fault_status(404);
  }
  topo.entry = ingress_id;
  topo.services = {{"orders-db", db_id},
                   {"api", api_id},
                   {"web", web_id},
                   {"nginx-ingress", ingress_id}};
  return topo;
}

Topology make_mq_pipeline(u64 seed, kernelsim::KernelConfig kernel_config) {
  Topology topo = start(seed, kernel_config, 3);
  App& app = *topo.app;

  ServiceSpec worker = http_service("worker", 900 * kMicrosecond, 4);
  const size_t worker_id = app.add_service(worker);

  ServiceSpec rabbitmq;
  rabbitmq.name = "rabbitmq";
  rabbitmq.protocol = L7Protocol::kMqtt;
  rabbitmq.compute_ns = 200 * kMicrosecond;
  rabbitmq.threads = 4;  // small pool: backlogs under pressure (§4.1.3)
  rabbitmq.calls = {{worker_id, "/consume"}};
  const size_t mq_id = app.add_service(rabbitmq);

  ServiceSpec analytics;
  analytics.name = "analytics";
  analytics.protocol = L7Protocol::kKafka;
  analytics.compute_ns = 300 * kMicrosecond;
  analytics.threads = 8;
  const size_t analytics_id = app.add_service(analytics);

  ServiceSpec orders = http_service("orders", 500 * kMicrosecond, 12);
  orders.calls = {{mq_id, "orders/created"}, {analytics_id, "orders-events"}};
  const size_t orders_id = app.add_service(orders);

  app.build();
  topo.entry = orders_id;
  topo.services = {{"worker", worker_id},
                   {"rabbitmq", mq_id},
                   {"analytics", analytics_id},
                   {"orders", orders_id}};
  return topo;
}

Topology make_ecommerce(u64 seed, kernelsim::KernelConfig kernel_config) {
  Topology topo = start(seed, kernel_config, 3);
  App& app = *topo.app;

  ServiceSpec inventory = http_service("inventory", 400 * kMicrosecond, 8, 2);
  inventory.use_coroutines = true;  // Go-style backend
  const size_t inventory_id = app.add_service(inventory);

  ServiceSpec api = http_service("api", 500 * kMicrosecond, 8, 2);
  api.tls = true;  // internal TLS: only the SSL uprobes see plaintext
  api.calls = {{inventory_id, "/stock"}};
  const size_t api_id = app.add_service(api);

  ServiceSpec storefront = http_service("storefront", 600 * kMicrosecond, 12);
  storefront.is_proxy = true;
  storefront.calls = {{api_id, "/api/v1"}};
  const size_t storefront_id = app.add_service(storefront);

  app.build();
  topo.entry = storefront_id;
  topo.services = {{"inventory", inventory_id},
                   {"api", api_id},
                   {"storefront", storefront_id}};
  return topo;
}

Topology make_polyglot(u64 seed, kernelsim::KernelConfig kernel_config) {
  Topology topo = start(seed, kernel_config, 3);
  App& app = *topo.app;

  ServiceSpec dns;
  dns.name = "coredns";
  dns.protocol = L7Protocol::kDns;
  dns.compute_ns = 50 * kMicrosecond;
  dns.threads = 4;
  const size_t dns_id = app.add_service(dns);

  ServiceSpec dubbo;
  dubbo.name = "dubbo-backend";
  dubbo.protocol = L7Protocol::kDubbo;
  dubbo.compute_ns = 400 * kMicrosecond;
  dubbo.threads = 8;
  const size_t dubbo_id = app.add_service(dubbo);

  ServiceSpec h2;
  h2.name = "grpc-like";
  h2.protocol = L7Protocol::kHttp2;
  h2.compute_ns = 350 * kMicrosecond;
  h2.threads = 8;
  h2.use_coroutines = true;
  h2.calls = {{dubbo_id, "com.shop.Inventory"}};
  const size_t h2_id = app.add_service(h2);

  ServiceSpec kafka;
  kafka.name = "kafka-broker";
  kafka.protocol = L7Protocol::kKafka;
  kafka.compute_ns = 200 * kMicrosecond;
  kafka.threads = 8;
  const size_t kafka_id = app.add_service(kafka);

  ServiceSpec amqp;
  amqp.name = "rabbit-amqp";
  amqp.protocol = L7Protocol::kAmqp;
  amqp.compute_ns = 150 * kMicrosecond;
  amqp.threads = 8;
  const size_t amqp_id = app.add_service(amqp);

  ServiceSpec front = http_service("front", 500 * kMicrosecond, 12);
  front.calls = {{dns_id, "api.shop.svc"},
                 {h2_id, "/inventory.v1/Get"},
                 {kafka_id, "events"},
                 {amqp_id, "orders.created"}};
  const size_t front_id = app.add_service(front);

  app.build();
  topo.entry = front_id;
  topo.services = {{"coredns", dns_id},
                   {"dubbo-backend", dubbo_id},
                   {"grpc-like", h2_id},
                   {"kafka-broker", kafka_id},
                   {"rabbit-amqp", amqp_id},
                   {"front", front_id}};
  return topo;
}

}  // namespace deepflow::workloads
