// Application builder + constant-throughput load generator (wrk2 stand-in).
// Turns ServiceSpecs into placed pods, wires the call graph through the
// cluster fabric, optionally instruments services with the intrusive SDK,
// and drives open-loop load while recording wrk2-style latency (measured
// from the scheduled arrival instant, avoiding coordinated omission).
#pragma once

#include <memory>
#include <vector>

#include "common/histogram.h"
#include "workloads/microservice.h"

namespace deepflow::workloads {

struct LoadResult {
  double offered_rps = 0;
  double achieved_rps = 0;
  u64 sent = 0;
  u64 completed = 0;
  u64 failed = 0;  // connection resets / dead paths
  LatencyHistogram latency{10 * kSecond};
};

class App {
 public:
  explicit App(netsim::Cluster* cluster, u64 seed = 7);

  /// Declare a service; returns its index for CallSpec wiring.
  size_t add_service(ServiceSpec spec);

  /// Create pods (round-robin across nodes), establish every connection in
  /// the call graph, and start serving. Call exactly once, after all
  /// add_service calls.
  void build();

  ServiceInstance* instance(size_t service, size_t replica);
  std::vector<ServiceInstance*> instances_of(size_t service);
  size_t service_count() const { return specs_.size(); }

  /// Attach an intrusive SDK tracer to every replica of `service`
  /// (Jaeger/Zipkin-style baselines and third-party integration).
  void instrument(size_t service, otelsim::ExportSink sink,
                  otelsim::TracerConfig config = {});

  /// Open-loop constant-rate load against `entry_service` for `duration`.
  /// `connections` is the wrk2 -c equivalent. Runs the event loop.
  LoadResult run_constant_load(size_t entry_service, double rps,
                               DurationNs duration, u32 connections = 32);

  netsim::Cluster& cluster() { return *cluster_; }
  u64 total_handled() const;

 private:
  netsim::Cluster* cluster_;
  Rng rng_;
  std::vector<ServiceSpec> specs_;
  std::vector<std::vector<std::unique_ptr<ServiceInstance>>> instances_;
  std::vector<netsim::ServiceId> registry_ids_;
  bool built_ = false;
};

}  // namespace deepflow::workloads
