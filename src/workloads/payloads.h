// Protocol-faithful payload construction and inbound-request parsing for the
// workload engine. Applications produce real wire bytes (the same bytes the
// tracing plane later parses), so nothing in the pipeline is mocked.
#pragma once

#include <string>

#include "common/types.h"
#include "protocols/message.h"

namespace deepflow::workloads {

/// Context an application attaches to an outgoing request. Only the HTTP
/// family can carry headers; other protocols silently drop them (exactly the
/// real-world limitation that motivates implicit propagation).
struct RequestContext {
  std::string x_request_id;   // "" = none
  std::string traceparent;    // "" = no third-party tracing
};

/// Build a request in the target's protocol. `stream_id` is used by
/// parallel protocols (HTTP/2 stream, DNS txn, Kafka correlation, Dubbo
/// request id) and ignored by pipeline protocols.
std::string build_request_payload(protocols::L7Protocol protocol,
                                  const std::string& endpoint, u64 stream_id,
                                  const RequestContext& ctx);

/// Build a response. `status` uses HTTP semantics (200 = OK, >= 400 error)
/// and is mapped to each protocol's own error vocabulary.
std::string build_response_payload(protocols::L7Protocol protocol, u32 status,
                                   u64 stream_id,
                                   const RequestContext& ctx);

/// What a serving application reads off an inbound request.
struct InboundRequest {
  std::string endpoint;
  u64 stream_id = 0;
  std::string x_request_id;
  std::string traceparent;
};

/// Parse an inbound request in the service's own protocol (the application
/// knows its protocol; no inference involved).
InboundRequest parse_inbound(protocols::L7Protocol protocol,
                             const std::string& payload);

/// Correlation id of a response in a parallel protocol, normalized to the
/// same id space build_request_payload consumed (0 when absent/malformed).
u64 response_stream_id(protocols::L7Protocol protocol,
                       const std::string& payload);

/// Success flag of a response payload (true when the parse fails — callers
/// treat undecodable responses as transport-level success).
bool response_ok(protocols::L7Protocol protocol, const std::string& payload);

}  // namespace deepflow::workloads
