// Pre-built application topologies matching the paper's evaluation targets:
// the Spring Boot demo and Istio Bookinfo (+Envoy sidecars) of §5.4, the
// Nginx single-VM setup of Appendix B, and the case-study scenarios of §4.1.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "workloads/app.h"

namespace deepflow::workloads {

struct Topology {
  std::unique_ptr<netsim::Cluster> cluster;
  std::unique_ptr<App> app;
  size_t entry = 0;                        // service the load enters at
  std::map<std::string, size_t> services;  // name -> index
};

/// Spring Boot demo (Fig 16a): gateway -> front -> {cart -> redis,
/// product -> mysql}. Jaeger-style instrumentation covers the four Java
/// services (4 spans/trace).
Topology make_spring_boot_demo(u64 seed = 11,
                               kernelsim::KernelConfig kernel_config = {});

/// Istio Bookinfo (Fig 16b): ingress gateway and per-service Envoy sidecars
/// around productpage -> {details, reviews -> ratings}. Zipkin-style
/// instrumentation covers six components (6 spans/trace).
Topology make_bookinfo(u64 seed = 13,
                       kernelsim::KernelConfig kernel_config = {});

/// Appendix B: wrk2 -> Nginx (static content, ~1 ms of work) on one VM.
Topology make_nginx_single_vm(u64 seed = 17,
                              kernelsim::KernelConfig kernel_config = {});

/// §4.1.1: Nginx ingress with three replicas fronting a web/api/db chain;
/// replica `faulty_replica` of the ingress answers 404.
Topology make_nginx_ingress_case(u32 faulty_replica = 1, u64 seed = 19,
                                 kernelsim::KernelConfig kernel_config = {});

/// §4.1.3: order service publishing through a RabbitMQ-style broker (MQTT)
/// to a worker, plus a Kafka-fed analytics path — the metric-correlation
/// debugging scenario.
Topology make_mq_pipeline(u64 seed = 23,
                          kernelsim::KernelConfig kernel_config = {});

/// §4.1.2 / Appendix A: storefront -> api -> inventory spread across nodes
/// with gateway devices in path; used for the ARP-anomaly hunt and the
/// end-host-to-gateway trace.
Topology make_ecommerce(u64 seed = 29,
                        kernelsim::KernelConfig kernel_config = {});

/// A polyglot mix exercising every supported protocol and the coroutine +
/// TLS paths; used by integration tests.
Topology make_polyglot(u64 seed = 31,
                       kernelsim::KernelConfig kernel_config = {});

}  // namespace deepflow::workloads
