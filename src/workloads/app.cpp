#include "workloads/app.h"

#include <algorithm>

#include "common/logging.h"
#include "protocols/parser.h"

namespace deepflow::workloads {

namespace {

protocols::SessionMatchMode mode_of(protocols::L7Protocol protocol) {
  static const protocols::ProtocolRegistry registry =
      protocols::ProtocolRegistry::with_builtin();
  const protocols::ProtocolParser* parser = registry.parser_for(protocol);
  return parser != nullptr ? parser->match_mode()
                           : protocols::SessionMatchMode::kPipeline;
}

}  // namespace

App::App(netsim::Cluster* cluster, u64 seed) : cluster_(cluster), rng_(seed) {}

size_t App::add_service(ServiceSpec spec) {
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

void App::build() {
  if (built_) return;
  built_ = true;
  if (cluster_->nodes().empty()) {
    cluster_->add_node("node-1");
    cluster_->add_node("node-2");
    cluster_->add_node("node-3");
  }
  const auto& nodes = cluster_->nodes();

  instances_.resize(specs_.size());
  registry_ids_.resize(specs_.size());
  size_t placement = 0;
  for (size_t s = 0; s < specs_.size(); ++s) {
    registry_ids_[s] = cluster_->add_service(specs_[s].name);
    for (u32 r = 0; r < specs_[s].replicas; ++r) {
      const netsim::NodeId node = nodes[placement++ % nodes.size()];
      netsim::PodHandle pod = cluster_->add_pod(
          node, specs_[s].name + "-" + std::to_string(r), specs_[s].name,
          registry_ids_[s], specs_[s].labels);
      instances_[s].push_back(std::make_unique<ServiceInstance>(
          cluster_, &specs_[s], s, r, pod, &rng_));
    }
  }

  // Wire the call graph: every client replica gets one connection to every
  // replica of each downstream target.
  for (size_t s = 0; s < specs_.size(); ++s) {
    for (auto& client : instances_[s]) {
      for (size_t c = 0; c < specs_[s].calls.size(); ++c) {
        const CallSpec& call = specs_[s].calls[c];
        const ServiceSpec& target_spec = specs_[call.target_service];
        const auto mode = mode_of(target_spec.protocol);
        // Pipeline protocols are one-outstanding per connection, so clients
        // keep a keep-alive pool sized to their worker count; multiplexing
        // protocols need only one connection per target replica.
        const size_t pool =
            mode == protocols::SessionMatchMode::kPipeline
                ? std::max<size_t>(1, specs_[s].threads)
                : 1;
        std::vector<netsim::ConnectionHandle> conns;
        for (auto& target : instances_[call.target_service]) {
          for (size_t k = 0; k < pool; ++k) {
            const u16 port = static_cast<u16>(8000 + call.target_service);
            netsim::ConnectionHandle conn = cluster_->connect(
                client->pod(), target->pod(), port, target_spec.tls);
            target->accept_connection(conn);
            conns.push_back(conn);
          }
        }
        client->add_link(c, target_spec.protocol, mode, call.endpoint,
                         std::move(conns));
      }
    }
  }
}

ServiceInstance* App::instance(size_t service, size_t replica) {
  return instances_[service][replica].get();
}

std::vector<ServiceInstance*> App::instances_of(size_t service) {
  std::vector<ServiceInstance*> out;
  for (auto& instance : instances_[service]) out.push_back(instance.get());
  return out;
}

void App::instrument(size_t service, otelsim::ExportSink sink,
                     otelsim::TracerConfig config) {
  for (auto& instance : instances_[service]) {
    instance->set_tracer(std::make_unique<otelsim::Tracer>(
        specs_[service].name, instance->pod().kernel->hostname(),
        instance->pod().pid, sink, config));
  }
}

u64 App::total_handled() const {
  u64 total = 0;
  for (const auto& replicas : instances_) {
    for (const auto& instance : replicas) total += instance->handled();
  }
  return total;
}

LoadResult App::run_constant_load(size_t entry_service, double rps,
                                  DurationNs duration, u32 connections) {
  // The load generator is itself a pod-backed process ("wrk2") whose
  // syscalls are traced like any other component.
  const ServiceSpec& entry_spec = specs_[entry_service];
  netsim::PodHandle client_pod = cluster_->add_pod(
      cluster_->nodes().front(), "wrk2", "wrk2", 0, {});
  kernelsim::Kernel* kernel = client_pod.kernel;

  struct Conn {
    netsim::ConnectionHandle handle;
    Tid tid = 0;
    bool busy = false;
    bool dead = false;
    TimestampNs scheduled = 0;  // arrival instant of the in-flight request
  };
  auto conns = std::make_shared<std::vector<Conn>>();
  auto waiting = std::make_shared<std::deque<TimestampNs>>();
  auto result = std::make_shared<LoadResult>();
  result->offered_rps = rps;

  const auto& entries = instances_[entry_service];
  for (u32 i = 0; i < connections; ++i) {
    Conn conn;
    ServiceInstance* target = entries[i % entries.size()].get();
    conn.handle = cluster_->connect(client_pod, target->pod(),
                                    static_cast<u16>(8000 + entry_service),
                                    entry_spec.tls);
    target->accept_connection(conn.handle);
    conn.tid = kernel->tasks().create_thread(client_pod.pid);
    conns->push_back(conn);
  }

  EventLoop& loop = cluster_->loop();
  const TimestampNs start = loop.now();
  const TimestampNs measure_end = start + duration;
  const protocols::L7Protocol proto = entry_spec.protocol;

  auto stream_counter = std::make_shared<u64>(1);
  auto rr_cursor = std::make_shared<size_t>(0);
  // Dispatch one request on connection `index` for an arrival scheduled at
  // `scheduled`, sending now.
  const auto dispatch = [this, conns, kernel, proto, stream_counter](
                            size_t index, TimestampNs scheduled,
                            TimestampNs now) {
    Conn& conn = (*conns)[index];
    conn.busy = true;
    conn.scheduled = scheduled;
    RequestContext rc;  // the raw client sends no tracing headers
    std::string payload =
        build_request_payload(proto, "/", (*stream_counter)++, rc);
    kernel->sys_send(conn.tid, conn.handle.client_socket, std::move(payload),
                     kernelsim::SyscallAbi::kSendTo, std::max(scheduled, now));
  };

  // Responses complete requests; free connections pick up queued arrivals.
  for (size_t i = 0; i < conns->size(); ++i) {
    const SocketId sock = (*conns)[i].handle.client_socket;
    cluster_->fabric().set_delivery_handler(
        sock, [this, conns, waiting, result, kernel, i, dispatch,
               measure_end](const kernelsim::WireMessage& message,
                            TimestampNs ts) {
          Conn& conn = (*conns)[i];
          const auto recv = kernel->sys_recv(
              conn.tid, conn.handle.client_socket, message,
              kernelsim::SyscallAbi::kRecvFrom, ts);
          // wrk2 semantics: only completions inside the measurement window
          // count toward throughput and latency; the drain tail does not.
          if (recv.exit_ts <= measure_end) {
            ++result->completed;
            result->latency.record(recv.exit_ts - conn.scheduled);
          }
          conn.busy = false;
          if (!waiting->empty()) {
            const TimestampNs scheduled = waiting->front();
            waiting->pop_front();
            dispatch(i, scheduled, recv.exit_ts);
          }
        });
    cluster_->fabric().set_reset_handler(
        sock, [conns, result, i](TimestampNs) {
          (*conns)[i].dead = true;
          if ((*conns)[i].busy) ++result->failed;
          (*conns)[i].busy = false;
        });
  }

  // Constant-rate open-loop arrivals.
  const u64 total_arrivals = static_cast<u64>(
      rps * static_cast<double>(duration) / static_cast<double>(kSecond));
  const double interval = static_cast<double>(kSecond) / rps;
  for (u64 n = 0; n < total_arrivals; ++n) {
    const TimestampNs at =
        start + static_cast<TimestampNs>(interval * static_cast<double>(n));
    loop.schedule_at(at, [conns, waiting, result, at, dispatch, rr_cursor] {
      ++result->sent;
      // Round-robin over the connections (and thus over the entry-service
      // replicas they were opened to) so load spreads like a real LB.
      for (size_t probe = 0; probe < conns->size(); ++probe) {
        const size_t i = (*rr_cursor)++ % conns->size();
        if (!(*conns)[i].busy && !(*conns)[i].dead) {
          dispatch(i, at, at);
          return;
        }
      }
      waiting->push_back(at);  // all connections occupied: queue (wrk2 keeps
                               // the intended schedule for latency math)
    });
  }

  // Run the measurement window, then drain remaining in-flight work so the
  // cluster is quiescent for whoever inspects it next.
  loop.run_until(measure_end);
  loop.run();

  result->failed = result->sent > result->completed
                       ? result->sent - result->completed
                       : 0;
  result->achieved_rps = static_cast<double>(result->completed) /
                         (static_cast<double>(duration) / kSecond);
  return std::move(*result);
}

}  // namespace deepflow::workloads
