#include "assembly/streaming_assembler.h"

#include <algorithm>

namespace deepflow::assembly {

namespace {

// Bookkeeping byte estimates for the kAssembly governor account. Approximate
// by design (like every owner's accounting): per-entry container overheads
// are flat constants, and add/sub pairs always cancel because the group
// carries the exact sum it was charged.
constexpr size_t kMemberBytes = sizeof(u64);
constexpr size_t kKeyBytes = sizeof(std::pair<u8, u64>) + 16;  // + table slot
constexpr size_t kIndexEntryBytes = 64;  // map node + shared_ptr control
constexpr u32 kNoRoot = ~u32{0};

}  // namespace

StreamingAssembler::StreamingAssembler(
    server::StreamingAssemblyConfig config, server::SpanStore* store,
    const server::TraceAssembler* assembler, ResourceGovernor* governor)
    : config_(config),
      store_(store),
      assembler_(assembler),
      governor_(governor),
      governor_accounting_(governor != nullptr && governor->accounting()),
      ledger_(config.completeness_window_ns, config.completeness_max_windows) {
  nodes_.reserve(1024);
  workers_.reserve(config_.finalize_workers);
  for (u32 i = 0; i < config_.finalize_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

StreamingAssembler::~StreamingAssembler() {
  // Workers drain whatever is still queued before exiting, so every detached
  // group is ledgered even on an unflushed shutdown.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Hand the kAssembly account back so a governor outliving this assembler
  // does not carry phantom bytes.
  if (governor_accounting_) {
    governor_->sub_bytes(
        GovernorAccount::kAssembly,
        open_bytes_ + index_bytes_.load(std::memory_order_relaxed));
  }
}

TimestampNs StreamingAssembler::watermark_locked() const {
  // Clamp at zero: near-zero clocks (and the wrap-adjacent fixtures) must
  // not underflow into a bogus huge watermark.
  return max_ts_ > config_.disorder_window_ns
             ? max_ts_ - config_.disorder_window_ns
             : 0;
}

TimestampNs StreamingAssembler::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_locked();
}

size_t StreamingAssembler::assembly_ceiling() const {
  if (governor_ == nullptr || !governor_->active()) return 0;
  return governor_->config().account_budget_bytes[static_cast<size_t>(
      GovernorAccount::kAssembly)];
}

u32 StreamingAssembler::find_locked(u32 node) {
  while (nodes_[node].parent != node) {
    nodes_[node].parent = nodes_[nodes_[node].parent].parent;  // path halving
    node = nodes_[node].parent;
  }
  return node;
}

u32 StreamingAssembler::unite_locked(u32 a, u32 b) {
  a = find_locked(a);
  b = find_locked(b);
  if (a == b) return a;
  // Small-to-large payload merge keeps total move work O(n log n).
  if (nodes_[a].group.members.size() < nodes_[b].group.members.size()) {
    std::swap(a, b);
  }
  Group& ga = nodes_[a].group;
  Group& gb = nodes_[b].group;
  ga.members.insert(ga.members.end(), gb.members.begin(), gb.members.end());
  ga.keys.insert(ga.keys.end(), gb.keys.begin(), gb.keys.end());
  ga.first_ts = std::min(ga.first_ts, gb.first_ts);
  ga.max_ts = std::max(ga.max_ts, gb.max_ts);
  ga.bytes += gb.bytes;
  ga.anomalous = ga.anomalous || gb.anomalous;
  gb = Group{};
  nodes_[b].parent = a;
  roots_.erase(b);
  return a;
}

void StreamingAssembler::observe_locked(const server::SpanNote& note) {
  if (note.start_ts > max_ts_) max_ts_ = note.start_ts;
  ++observed_;
  const TimestampNs wm = watermark_locked();
  if (wm > 0 && note.start_ts < wm) {
    // Straggler: its original group may already be closed. It starts (or
    // joins) whatever group its keys still map to — degradation is monotone,
    // never a mutation of a finalized trace.
    ++late_;
  }

  // Collect the note's association keys — same presence guards as the batch
  // assembler's add_new_keys, with req/resp TCP seqs sharing one namespace.
  std::array<std::pair<u8, u64>, 6> keys;
  size_t nkeys = 0;
  if (note.systrace_id != kInvalidSystraceId) {
    keys[nkeys++] = {kSystrace, note.systrace_id};
  }
  if (note.pseudo_key != 0) keys[nkeys++] = {kPseudoThread, note.pseudo_key};
  if (note.x_request_hash != 0) {
    keys[nkeys++] = {kXRequestId, note.x_request_hash};
  }
  if (note.req_tcp_seq != 0) keys[nkeys++] = {kTcpSeq, note.req_tcp_seq};
  if (note.resp_tcp_seq != 0 && note.resp_tcp_seq != note.req_tcp_seq) {
    keys[nkeys++] = {kTcpSeq, note.resp_tcp_seq};
  }
  if (note.otel_hash != 0) keys[nkeys++] = {kOtel, note.otel_hash};

  // Pass 1: resolve every already-known key, uniting their groups.
  u32 root = kNoRoot;
  std::array<size_t, 6> missing;
  size_t nmissing = 0;
  for (size_t i = 0; i < nkeys; ++i) {
    const u32 node = key_table_.find(keys[i].first, keys[i].second);
    if (node == KeyTable::kNotFound) {
      missing[nmissing++] = i;
      continue;
    }
    const u32 r = find_locked(node);
    root = root == kNoRoot ? r : unite_locked(root, r);
  }
  size_t delta = 0;
  if (root == kNoRoot) {
    root = static_cast<u32>(nodes_.size());
    nodes_.push_back(Node{root, Group{}});
    roots_.insert(root);
    delta += sizeof(Node) + 16;  // node slot + roots_ entry
  }
  // Pass 2: claim the new keys for the (possibly merged) root.
  Group& g = nodes_[root].group;
  for (size_t m = 0; m < nmissing; ++m) {
    const std::pair<u8, u64>& k = keys[missing[m]];
    key_table_.insert(k.first, k.second, root);
    g.keys.push_back(k);
    delta += kKeyBytes;
  }
  g.members.push_back(note.span_id);
  delta += kMemberBytes;
  g.first_ts = std::min(g.first_ts, note.start_ts);
  g.max_ts = std::max(g.max_ts, std::max(note.start_ts, note.end_ts));
  g.anomalous = g.anomalous || note.anomalous;
  g.bytes += delta;
  open_bytes_ += delta;
  if (governor_accounting_) {
    governor_->add_bytes(GovernorAccount::kAssembly, delta);
  }
}

StreamingAssembler::Group StreamingAssembler::detach_locked(u32 root) {
  Group g = std::move(nodes_[root].group);
  nodes_[root].group = Group{};
  // The component owns every key in its merged key list, so plain erasure
  // cannot touch another live group's mapping. Erasing here is what makes a
  // post-close straggler open a NEW group instead of resurrecting this one.
  for (const std::pair<u8, u64>& k : g.keys) {
    key_table_.erase(k.first, k.second);
  }
  open_bytes_ -= std::min(open_bytes_, g.bytes);
  if (governor_accounting_) {
    governor_->sub_bytes(GovernorAccount::kAssembly, g.bytes);
  }
  return g;
}

void StreamingAssembler::scan_closable_locked(bool force_all,
                                              std::vector<Group>* out) {
  const TimestampNs wm = watermark_locked();
  // wm == 0 (the run is still inside its first disorder window) cannot close
  // anything; skip the sweep so the periodic scan costs nothing until the
  // watermark actually starts moving.
  if (force_all || wm > 0) {
    for (auto it = roots_.begin(); it != roots_.end();) {
      // Strictly below: a span landing exactly AT the watermark can still
      // join its group (the §3.3 disorder window is inclusive).
      if (force_all || nodes_[*it].group.max_ts < wm) {
        out->push_back(detach_locked(*it));
        it = roots_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (force_all) return;

  const auto oldest_root = [this]() {
    u32 best = kNoRoot;
    TimestampNs best_ts = ~TimestampNs{0};
    for (const u32 r : roots_) {
      if (best == kNoRoot || nodes_[r].group.first_ts < best_ts) {
        best = r;
        best_ts = nodes_[r].group.first_ts;
      }
    }
    return best;
  };
  // Hard cap on concurrently open windows: trim oldest-first.
  while (config_.max_open_windows > 0 &&
         roots_.size() > config_.max_open_windows) {
    const u32 r = oldest_root();
    out->push_back(detach_locked(r));
    roots_.erase(r);
    forced_closes_.fetch_add(1, std::memory_order_relaxed);
  }
  // Governor pressure on the kAssembly account: early-close oldest windows
  // until the account drops under its ceiling (or no open state is left —
  // the account also carries the completed index, which only queries/
  // restarts shrink; with everything closed the assembler degrades to
  // close-immediately mode, which is monotone, not corrupt).
  const size_t ceiling = assembly_ceiling();
  if (ceiling == 0) return;
  while (!roots_.empty() && open_bytes_ > 0 &&
         governor_->account_bytes(GovernorAccount::kAssembly) > ceiling) {
    const u32 r = oldest_root();
    out->push_back(detach_locked(r));
    roots_.erase(r);
    pressure_closes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void StreamingAssembler::observe(const server::SpanNote& note) {
  observe_many(&note, 1);
}

void StreamingAssembler::observe_many(const server::SpanNote* notes,
                                      size_t count) {
  if (count == 0) return;
  std::vector<Group> to_close;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < count; ++i) observe_locked(notes[i]);
    spans_since_scan_ += static_cast<u32>(count);
    if (spans_since_scan_ >= config_.close_check_interval_spans) {
      spans_since_scan_ = 0;
      scan_closable_locked(/*force_all=*/false, &to_close);
    }
  }
  dispatch_groups(std::move(to_close));
}

void StreamingAssembler::flush() {
  std::vector<Group> to_close;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans_since_scan_ = 0;
    scan_closable_locked(/*force_all=*/true, &to_close);
  }
  dispatch_groups(std::move(to_close));
  wait_drained();
}

void StreamingAssembler::dispatch_groups(std::vector<Group>&& groups) {
  if (groups.empty()) return;
  if (workers_.empty()) {
    // Synchronous mode: finalization (store search, parent assignment,
    // sampling, indexing) still runs outside mu_, so concurrent ingest
    // threads keep grouping while this one finalizes.
    for (Group& group : groups) finalize_group(std::move(group));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    inflight_ += groups.size();
    for (Group& group : groups) queue_.push_back(std::move(group));
  }
  queue_cv_.notify_all();
}

void StreamingAssembler::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_, and nothing left to drain
    Group group = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    finalize_group(std::move(group));
    lock.lock();
    if (--inflight_ == 0) drained_cv_.notify_all();
  }
}

void StreamingAssembler::wait_drained() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(queue_mu_);
  drained_cv_.wait(lock, [this] { return inflight_ == 0; });
}

u64 StreamingAssembler::trace_key_of(
    const server::AssembledTrace& trace) const {
  // Content-derived identity mirroring the server's span-level trace key
  // (x-request-id hash, else systrace id, else span id), reduced with min()
  // over the whole trace so the verdict is independent of member order and
  // of which group member seeded the assembly.
  u64 best_xrid = ~u64{0};
  bool have_xrid = false;
  u64 best_sys = ~u64{0};
  bool have_sys = false;
  u64 best_id = ~u64{0};
  for (const server::AssembledSpan& s : trace.spans) {
    const agent::Span& span = s.span;
    if (span.lost_placeholder) continue;
    if (!span.x_request_id.empty()) {
      have_xrid = true;
      best_xrid = std::min(best_xrid, fnv1a(span.x_request_id));
    }
    if (span.systrace_id != kInvalidSystraceId) {
      have_sys = true;
      best_sys = std::min<u64>(best_sys, span.systrace_id);
    }
    best_id = std::min(best_id, span.span_id);
  }
  if (have_xrid) return best_xrid;
  if (have_sys) return best_sys;
  return best_id;
}

void StreamingAssembler::finalize_group(Group&& group) {
  std::sort(group.members.begin(), group.members.end());
  group.members.erase(std::unique(group.members.begin(), group.members.end()),
                      group.members.end());
  const std::unordered_set<u64> member_set(group.members.begin(),
                                           group.members.end());
  std::unordered_set<u64> covered;
  // Assemble from each not-yet-covered member: the search closure is
  // symmetric, so assembling from any member of one trace yields the same
  // trace; the loop only re-runs when one union-find component (e.g. via a
  // hash collision) actually spans several traces.
  for (const u64 seed : group.members) {
    if (covered.count(seed) != 0) continue;
    server::AssembledTrace trace = assembler_->assemble(seed);
    if (trace.spans.empty()) {
      // The store could not resolve the id (e.g. it was remapped after the
      // note was taken). Excluded from the ledger entirely — partial notes
      // would break offered == stored + downsampled + refused.
      covered.insert(seed);
      unknown_ids_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // This group's members inside the trace. Spans pulled in from OTHER
    // groups (still open, or already finalized by their own close) are
    // ledgered by those groups; counting them here would double-book.
    std::vector<const agent::Span*> mine;
    size_t mine_bytes = 0;
    bool anomalous = group.anomalous;
    for (const server::AssembledSpan& s : trace.spans) {
      anomalous = anomalous || !s.span.ok || s.span.incomplete ||
                  s.span.lost_placeholder;
      if (s.span.span_id == server::kLostPlaceholderSpanId) continue;
      if (member_set.count(s.span.span_id) != 0 &&
          covered.insert(s.span.span_id).second) {
        mine.push_back(&s.span);
        mine_bytes += agent::approx_span_bytes(s.span);
      }
    }
    if (mine.empty()) continue;

    enum class Verdict { kStored, kAnomalousKept, kSampledKept, kDropped };
    Verdict verdict = Verdict::kStored;
    const server::TailSamplingConfig& sampling = config_.tail_sampling;
    if (sampling.enabled) {
      if (anomalous) {
        verdict = Verdict::kAnomalousKept;
      } else {
        const u32 pct = std::min<u32>(sampling.healthy_keep_pct, 100);
        const u64 h = mix64(trace_key_of(trace) ^ sampling.sample_seed);
        verdict = h % 100 < pct ? Verdict::kSampledKept : Verdict::kDropped;
      }
    }
    finalized_traces_.fetch_add(1, std::memory_order_relaxed);
    finalized_spans_.fetch_add(mine.size(), std::memory_order_relaxed);
    for (const agent::Span* span : mine) {
      switch (verdict) {
        case Verdict::kStored:
          ledger_.note_stored(span->start_ts);
          break;
        case Verdict::kAnomalousKept:
          ledger_.note_anomalous_kept(span->start_ts);
          break;
        case Verdict::kSampledKept:
          ledger_.note_sampled_kept(span->start_ts);
          break;
        case Verdict::kDropped:
          ledger_.note_downsampled(span->start_ts);
          break;
      }
    }
    if (verdict == Verdict::kDropped) {
      dropped_traces_.fetch_add(1, std::memory_order_relaxed);
      dropped_spans_.fetch_add(mine.size(), std::memory_order_relaxed);
      dropped_bytes_.fetch_add(mine_bytes, std::memory_order_relaxed);
      if (sampling.drop_from_flush && store_ != nullptr &&
          store_->storage_enabled()) {
        std::vector<u64> ids;
        ids.reserve(mine.size());
        for (const agent::Span* span : mine) ids.push_back(span->span_id);
        flush_excluded_.fetch_add(store_->discard_unflushed(ids),
                                  std::memory_order_relaxed);
      }
      continue;
    }
    if (verdict == Verdict::kAnomalousKept) {
      kept_anomalous_.fetch_add(1, std::memory_order_relaxed);
    } else if (verdict == Verdict::kSampledKept) {
      kept_sampled_.fetch_add(1, std::memory_order_relaxed);
    }
    retained_bytes_.fetch_add(mine_bytes, std::memory_order_relaxed);

    // Materialize into the completed index: every real span id of the trace
    // maps to one immutable shared object. emplace = first finalization
    // wins; a straggler group's superset trace never rewrites ids that were
    // already being served.
    size_t trace_bytes = sizeof(server::AssembledTrace);
    for (const server::AssembledSpan& s : trace.spans) {
      trace_bytes += sizeof(server::ParentRuleId) +
                     agent::approx_span_bytes(s.span);
    }
    auto shared =
        std::make_shared<const server::AssembledTrace>(std::move(trace));
    size_t added = 0;
    {
      std::unique_lock<std::shared_mutex> lock(index_mu_);
      for (const server::AssembledSpan& s : shared->spans) {
        if (s.span.span_id == server::kLostPlaceholderSpanId) continue;
        if (completed_.emplace(s.span.span_id, shared).second) ++added;
      }
    }
    if (added > 0) {
      const size_t bytes = trace_bytes + added * kIndexEntryBytes;
      index_traces_.fetch_add(1, std::memory_order_relaxed);
      indexed_spans_.fetch_add(added, std::memory_order_relaxed);
      index_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      if (governor_accounting_) {
        governor_->add_bytes(GovernorAccount::kAssembly, bytes);
      }
    }
  }
}

std::shared_ptr<const server::AssembledTrace> StreamingAssembler::completed(
    u64 span_id) const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  const auto it = completed_.find(span_id);
  return it == completed_.end() ? nullptr : it->second;
}

std::vector<CompletenessWindow> StreamingAssembler::completeness(
    TimestampNs from, TimestampNs to) const {
  return ledger_.windows(from, to);
}

server::AssemblyTelemetry StreamingAssembler::telemetry() const {
  server::AssemblyTelemetry t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t.open_windows = roots_.size();
    t.open_bytes = open_bytes_;
    t.max_observed_ts = max_ts_;
    t.watermark_ns = watermark_locked();
    t.watermark_lag_ns = t.max_observed_ts - t.watermark_ns;
    t.observed_spans = observed_;
    t.late_spans = late_;
  }
  const auto load = [](const std::atomic<u64>& a) {
    return a.load(std::memory_order_relaxed);
  };
  t.finalized_traces = load(finalized_traces_);
  t.finalized_spans = load(finalized_spans_);
  t.forced_closes = load(forced_closes_);
  t.pressure_closes = load(pressure_closes_);
  t.index_traces = load(index_traces_);
  t.indexed_spans = load(indexed_spans_);
  t.index_bytes = load(index_bytes_);
  t.kept_anomalous_traces = load(kept_anomalous_);
  t.kept_sampled_traces = load(kept_sampled_);
  t.dropped_traces = load(dropped_traces_);
  t.dropped_spans = load(dropped_spans_);
  t.retained_bytes = load(retained_bytes_);
  t.dropped_bytes = load(dropped_bytes_);
  t.flush_excluded_spans = load(flush_excluded_);
  t.unknown_span_ids = load(unknown_ids_);
  return t;
}

}  // namespace deepflow::assembly
