// Streaming trace assembly with watermark windows (ISSUE 10, §3.3).
//
// The batch path assembles traces at query time; at scale you cannot keep
// every span until somebody asks. This assembler runs on the ingest path:
// every admitted span's association keys land in an incremental union-find
// grouper, and a group is *closed* once the watermark — max observed
// start_ts minus the §3.3 disorder window, advancing monotonically — passes
// its newest member timestamp. Closing finalizes the group through the
// existing delta-search/parent-assignment machinery (TraceAssembler against
// the live store, so the result is byte-identical to the batch query path by
// construction) and hands the completed trace to two consumers:
//
//   * the query plane: a materialized span-id -> trace index the server
//     probes before falling back to batch assembly (first finalization wins,
//     so a straggler-induced re-finalization never rewrites served history);
//   * the tail sampler: anomalous traces (error / incomplete / placeholder
//     spans, or RED latency outliers flagged at ingest) are kept at full
//     fidelity; healthy traces are kept with probability healthy_keep_pct,
//     decided by a content-derived trace key so the verdict is independent
//     of arrival order and worker count. Dropped traces leave the pending
//     segment flush (disk retention follows the same policy) and every
//     verdict lands in a CompletenessLedger keyed by span start time.
//
// Grouping key kinds mirror TraceAssembler's search exactly — systrace id,
// pseudo-thread key, X-Request-ID hash, req/resp TCP seq (one shared
// namespace, as in SearchFilter::tcp_seqs), otel trace id hash — so the
// union-find component is always a subset of the search closure. The
// finalizer assembles from each not-yet-covered member, which also handles
// the (hash-collision) case of one component spanning several traces.
//
// The ingest thread only pays for grouping: closed groups are detached under
// the grouper lock and finalized (store search, parent assignment, sampling,
// indexing) by a small worker pool — or inline when finalize_workers is 0.
// The grouper hot path is allocation-light by design: association keys live
// in one open-addressing table (no per-key node allocations), and the
// watermark is a subtraction off the running maximum.
//
// Degradation is monotone by design: a straggler arriving after its group
// closed starts a NEW group (late_spans++); its finalized trace may be a
// superset of the earlier one (the store search still sees the old spans),
// but the first-closed trace object is immutable and keeps being served.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/governor.h"
#include "server/span_store.h"
#include "server/streaming_hook.h"
#include "server/trace_assembler.h"

namespace deepflow::assembly {

class StreamingAssembler : public server::StreamingHook {
 public:
  /// `store` and `assembler` must outlive this object; `governor` may be
  /// null (or inactive) — the assembler then runs unaccounted and unbounded.
  StreamingAssembler(server::StreamingAssemblyConfig config,
                     server::SpanStore* store,
                     const server::TraceAssembler* assembler,
                     ResourceGovernor* governor = nullptr);
  ~StreamingAssembler() override;

  StreamingAssembler(const StreamingAssembler&) = delete;
  StreamingAssembler& operator=(const StreamingAssembler&) = delete;

  void observe(const server::SpanNote& note) override;
  void observe_many(const server::SpanNote* notes, size_t count) override;
  std::shared_ptr<const server::AssembledTrace> completed(u64 span_id)
      const override;
  void flush() override;
  server::AssemblyTelemetry telemetry() const override;
  std::vector<CompletenessWindow> completeness(TimestampNs from,
                                               TimestampNs to) const override;

  /// Current watermark: max observed start_ts minus the disorder window,
  /// clamped at zero. Monotone (the maximum only ever grows).
  TimestampNs watermark() const;

 private:
  /// One shared namespace per association attribute; kTcpSeq deliberately
  /// folds req and resp sequences together, mirroring SearchFilter.
  enum KeyKind : size_t {
    kSystrace = 0,
    kPseudoThread,
    kXRequestId,
    kTcpSeq,
    kOtel,
    kKeyKinds,
  };

  /// Open-addressing (kind, key) -> group-node map, linear probing with
  /// tombstone deletion. The grouper does ~3-5 probes per span on the ingest
  /// hot path; a node-based map would pay a malloc per insert and a pointer
  /// chase per probe, which alone blows the streaming overhead budget
  /// (bench_streaming holds the ingest penalty under 15%).
  class KeyTable {
   public:
    static constexpr u32 kNotFound = ~u32{0};

    KeyTable() { slots_.resize(kInitialCapacity); }

    u32 find(u8 kind, u64 key) const {
      size_t i = slot_hash(kind, key) & (slots_.size() - 1);
      for (;; i = (i + 1) & (slots_.size() - 1)) {
        const Slot& s = slots_[i];
        if (s.state == kEmpty) return kNotFound;
        if (s.state == kFull && s.kind == kind && s.key == key) {
          return s.value;
        }
      }
    }

    /// Insert a key assumed absent (callers always probe first).
    void insert(u8 kind, u64 key, u32 value) {
      if ((used_ + 1) * 4 >= slots_.size() * 3) grow();
      size_t i = slot_hash(kind, key) & (slots_.size() - 1);
      while (slots_[i].state == kFull) i = (i + 1) & (slots_.size() - 1);
      if (slots_[i].state == kEmpty) ++used_;  // tombstone reuse keeps used_
      slots_[i] = Slot{key, value, kind, kFull};
      ++size_;
    }

    void erase(u8 kind, u64 key) {
      size_t i = slot_hash(kind, key) & (slots_.size() - 1);
      for (;; i = (i + 1) & (slots_.size() - 1)) {
        Slot& s = slots_[i];
        if (s.state == kEmpty) return;
        if (s.state == kFull && s.kind == kind && s.key == key) {
          s.state = kTombstone;
          --size_;
          return;
        }
      }
    }

   private:
    enum : u8 { kEmpty = 0, kFull = 1, kTombstone = 2 };
    struct Slot {
      u64 key = 0;
      u32 value = 0;
      u8 kind = 0;
      u8 state = kEmpty;
    };
    static constexpr size_t kInitialCapacity = 1024;  // power of two

    static u64 slot_hash(u8 kind, u64 key) {
      return mix64(key ^ (u64{kind} * 0x9e3779b97f4a7c15ULL));
    }

    void grow() {
      // Rehashing also drops tombstones, so a long-lived table that churns
      // groups does not degrade into all-tombstone probe chains.
      std::vector<Slot> old;
      old.swap(slots_);
      // Mostly-tombstones -> rehash in place; genuinely full -> double.
      slots_.resize(size_ * 4 >= old.size() ? old.size() * 2 : old.size());
      used_ = size_;
      size_t n = 0;
      for (const Slot& s : old) {
        if (s.state != kFull) continue;
        size_t i = slot_hash(s.kind, s.key) & (slots_.size() - 1);
        while (slots_[i].state == kFull) i = (i + 1) & (slots_.size() - 1);
        slots_[i] = s;
        ++n;
      }
      size_ = n;
    }

    std::vector<Slot> slots_;
    size_t size_ = 0;  ///< live entries
    size_t used_ = 0;  ///< live entries + tombstones (probe-chain load)
  };

  /// Union-find payload, valid only at live roots.
  struct Group {
    std::vector<u64> members;
    std::vector<std::pair<u8, u64>> keys;  // (KeyKind, value) owned entries
    TimestampNs first_ts = ~TimestampNs{0};
    TimestampNs max_ts = 0;  ///< max over member start AND end timestamps
    size_t bytes = 0;        ///< bookkeeping bytes charged to kAssembly
    bool anomalous = false;  ///< OR of member SpanNote::anomalous bits
  };
  struct Node {
    u32 parent = 0;  // == own index at roots
    Group group;
  };

  // All grouper state is guarded by mu_; closes detach groups under mu_ and
  // finalize (store search + parent assignment + sampling + indexing) off it
  // — on the worker pool, or inline when finalize_workers == 0 — so ingest
  // latency stays bounded by grouping work only.
  u32 find_locked(u32 node);
  u32 unite_locked(u32 a, u32 b);
  void observe_locked(const server::SpanNote& note);
  void scan_closable_locked(bool force_all, std::vector<Group>* out);
  Group detach_locked(u32 root);
  void dispatch_groups(std::vector<Group>&& groups);
  void worker_loop();
  void wait_drained();
  void finalize_group(Group&& group);
  u64 trace_key_of(const server::AssembledTrace& trace) const;
  TimestampNs watermark_locked() const;
  size_t assembly_ceiling() const;

  const server::StreamingAssemblyConfig config_;
  server::SpanStore* const store_;
  const server::TraceAssembler* const assembler_;
  ResourceGovernor* const governor_;
  /// Governor byte reporting resolved once: accounting() is fixed at
  /// governor construction, so the hot path skips the call entirely when
  /// deltas would be discarded anyway.
  const bool governor_accounting_;
  CompletenessLedger ledger_;

  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  KeyTable key_table_;
  std::unordered_set<u32> roots_;
  /// Global maximum observed start_ts. Only ever grows (under mu_), and the
  /// watermark is derived from it by a clamped subtraction, so the watermark
  /// is monotone and deterministic under any ingest interleaving.
  TimestampNs max_ts_ = 0;
  u32 spans_since_scan_ = 0;
  size_t open_bytes_ = 0;
  // Mutated under mu_ only; telemetry() reads them under mu_.
  u64 observed_ = 0;
  u64 late_ = 0;

  // Finalizer pool. Closed groups queue here; inflight_ counts queued plus
  // in-finalization groups so flush() can wait for a true drain.
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Group> queue_;
  size_t inflight_ = 0;
  bool stopping_ = false;

  mutable std::shared_mutex index_mu_;
  std::unordered_map<u64, std::shared_ptr<const server::AssembledTrace>>
      completed_;

  // Counters mutated outside mu_ (finalize path) are atomics.
  std::atomic<u64> finalized_traces_{0};
  std::atomic<u64> finalized_spans_{0};
  std::atomic<u64> forced_closes_{0};
  std::atomic<u64> pressure_closes_{0};
  std::atomic<u64> index_traces_{0};
  std::atomic<u64> indexed_spans_{0};
  std::atomic<u64> index_bytes_{0};
  std::atomic<u64> kept_anomalous_{0};
  std::atomic<u64> kept_sampled_{0};
  std::atomic<u64> dropped_traces_{0};
  std::atomic<u64> dropped_spans_{0};
  std::atomic<u64> retained_bytes_{0};
  std::atomic<u64> dropped_bytes_{0};
  std::atomic<u64> flush_excluded_{0};
  std::atomic<u64> unknown_ids_{0};
};

}  // namespace deepflow::assembly
