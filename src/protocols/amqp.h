// AMQP 0-9-1 (RabbitMQ's native protocol): general frame format of
// type(1) channel(2) size(4) payload frame-end(0xCE). Method frames carry
// class-id/method-id; we model the basic publish/deliver/ack flow the
// paper's RabbitMQ case study exercises. Pipeline protocol in this codec
// (publishes and their acks stay ordered per channel).
#pragma once

#include <string>

#include "protocols/parser.h"

namespace deepflow::protocols {

class AmqpParser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kAmqp; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kPipeline;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

/// Protocol header "AMQP\x00\x00\x09\x01" opening a connection.
std::string build_amqp_protocol_header();
/// basic.publish method frame to `routing_key` on `channel`.
std::string build_amqp_publish(u16 channel, std::string_view routing_key);
/// basic.ack method frame on `channel` (the broker's confirm).
std::string build_amqp_ack(u16 channel);
/// channel.close with a reply code (e.g. 312 NO_ROUTE) — the error form.
std::string build_amqp_close(u16 channel, u16 reply_code,
                             std::string_view reply_text);

}  // namespace deepflow::protocols
