#include "protocols/http2.h"

#include <charconv>

#include "protocols/bytes.h"

namespace deepflow::protocols {

namespace {

constexpr u8 kFrameHeaders = 0x1;
constexpr u8 kFlagEndHeaders = 0x4;

/// Encode the simplified header block: repeated "key\x00value\x00".
std::string encode_block(const std::vector<Http2Header>& headers) {
  std::string block;
  for (const auto& [key, value] : headers) {
    block.append(key).push_back('\0');
    block.append(value).push_back('\0');
  }
  return block;
}

std::string build_headers_frame(u32 stream_id, std::string block) {
  BinaryWriter w;
  w.write_u24(static_cast<u32>(block.size()));
  w.write_u8(kFrameHeaders);
  w.write_u8(kFlagEndHeaders);
  w.write_u32(stream_id & 0x7fffffffu);
  w.write_bytes(block);
  return std::move(w).str();
}

/// Decode "key\x00value\x00" pairs, tolerating truncation.
std::vector<Http2Header> decode_block(std::string_view block) {
  std::vector<Http2Header> out;
  size_t pos = 0;
  while (pos < block.size()) {
    const size_t key_end = block.find('\0', pos);
    if (key_end == std::string_view::npos) break;
    const size_t value_end = block.find('\0', key_end + 1);
    if (value_end == std::string_view::npos) break;
    out.emplace_back(std::string(block.substr(pos, key_end - pos)),
                     std::string(block.substr(key_end + 1,
                                              value_end - key_end - 1)));
    pos = value_end + 1;
  }
  return out;
}

}  // namespace

bool Http2Parser::infer(std::string_view payload) const {
  if (payload.starts_with("PRI * HTTP/2.0")) return true;  // client preface
  if (payload.size() < 9) return false;
  BinaryReader r(payload);
  const auto length = r.read_u24();
  const auto type = r.read_u8();
  const auto flags = r.read_u8();
  const auto stream = r.read_u32();
  if (!length || !type || !flags || !stream) return false;
  if (*type != kFrameHeaders || (*stream & 0x7fffffffu) == 0) return false;
  // Flag nibble must only use bits defined for HEADERS frames (END_STREAM,
  // END_HEADERS, PADDED, PRIORITY) — random bytes rarely pass this.
  if ((*flags & ~0x2du) != 0) return false;
  // Declared length must be consistent with the captured bytes: equal for
  // complete frames, larger only when the snapshot was truncated at the
  // capture bound. This is what keeps other binary protocols (e.g. MySQL
  // packets, whose 4th byte can be 0x01) from misrouting here.
  constexpr size_t kSnapshotFloor = 250;
  if (*length + 9 == payload.size()) return true;
  return *length + 9 > payload.size() && payload.size() >= kSnapshotFloor;
}

std::optional<ParsedMessage> Http2Parser::parse(
    std::string_view payload) const {
  if (payload.starts_with("PRI * HTTP/2.0")) {
    ParsedMessage msg;
    msg.protocol = L7Protocol::kHttp2;
    msg.type = MessageType::kRequest;
    msg.method = "PRI";
    msg.endpoint = "*";
    return msg;
  }
  BinaryReader r(payload);
  const auto length = r.read_u24();
  const auto type = r.read_u8();
  r.read_u8();  // flags
  const auto stream = r.read_u32();
  if (!length || !type || !stream || *type != kFrameHeaders) {
    return std::nullopt;
  }
  const size_t block_len = std::min<size_t>(*length, r.remaining());
  const auto block = r.read_bytes(block_len);
  if (!block) return std::nullopt;

  ParsedMessage msg;
  msg.protocol = L7Protocol::kHttp2;
  msg.stream_id = *stream & 0x7fffffffu;
  for (const auto& [key, value] : decode_block(*block)) {
    if (key == ":method") {
      msg.type = MessageType::kRequest;
      msg.method = value;
    } else if (key == ":path") {
      msg.endpoint = value;
    } else if (key == ":status") {
      msg.type = MessageType::kResponse;
      u32 status = 0;
      std::from_chars(value.data(), value.data() + value.size(), status);
      msg.status_code = status;
      msg.ok = status < 400;
    } else if (key == "x-request-id") {
      msg.x_request_id = value;
    } else if (key == "traceparent") {
      msg.trace_context = value;
    }
  }
  if (msg.type == MessageType::kUnknown) return std::nullopt;
  return msg;
}

std::string build_http2_request(u32 stream_id, std::string_view method,
                                std::string_view path,
                                const std::vector<Http2Header>& headers) {
  std::vector<Http2Header> all;
  all.reserve(headers.size() + 2);
  all.emplace_back(":method", std::string(method));
  all.emplace_back(":path", std::string(path));
  all.insert(all.end(), headers.begin(), headers.end());
  return build_headers_frame(stream_id, encode_block(all));
}

std::string build_http2_response(u32 stream_id, u32 status,
                                 const std::vector<Http2Header>& headers) {
  std::vector<Http2Header> all;
  all.reserve(headers.size() + 1);
  all.emplace_back(":status", std::to_string(status));
  all.insert(all.end(), headers.begin(), headers.end());
  return build_headers_frame(stream_id, encode_block(all));
}

}  // namespace deepflow::protocols
