// Parser interface and the protocol registry that performs DeepFlow's
// one-time-per-connection protocol inference (§3.3.1, phase two): iterate
// the common protocol specifications (plus user-supplied custom parsers),
// pick the first whose signature matches, and cache the decision per flow.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "protocols/message.h"

namespace deepflow::protocols {

class ProtocolParser {
 public:
  virtual ~ProtocolParser() = default;

  virtual L7Protocol protocol() const = 0;
  virtual SessionMatchMode match_mode() const = 0;

  /// Signature check: does this payload plausibly start a message of this
  /// protocol? Must be cheap and conservative (false negatives are retried
  /// on the next message; false positives poison the connection's cache).
  virtual bool infer(std::string_view payload) const = 0;

  /// Full parse. Returns nullopt on malformed/foreign payloads. Must be
  /// robust to truncation: payloads are bounded snapshots.
  virtual std::optional<ParsedMessage> parse(std::string_view payload) const = 0;
};

/// Ordered collection of parsers. Built-in order follows specificity:
/// magic-numbered binary protocols first, then structured text, then the
/// permissive text protocols, so that ambiguous payloads resolve to the
/// most constrained match.
class ProtocolRegistry {
 public:
  /// Registry pre-populated with all built-in parsers.
  static ProtocolRegistry with_builtin();

  /// Append a parser (user-supplied custom protocol specifications go
  /// through this, after the built-ins).
  void register_parser(std::unique_ptr<ProtocolParser> parser);

  /// Try every parser's signature check in order; null when none match.
  const ProtocolParser* infer(std::string_view payload) const;

  /// Parser for a known protocol; null for kUnknown/unregistered.
  const ProtocolParser* parser_for(L7Protocol protocol) const;

  size_t parser_count() const { return parsers_.size(); }

 private:
  std::vector<std::unique_ptr<ProtocolParser>> parsers_;
};

}  // namespace deepflow::protocols
