// Bounds-checked big-endian readers/writers for the binary protocol codecs.
// Parsers must never read past a truncated buffer: every accessor reports
// failure instead of touching out-of-range bytes (payload snapshots are
// capped at 256 B, so truncation is the common case, not the exception).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace deepflow::protocols {

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool ok() const { return !failed_; }

  std::optional<u8> read_u8() { return read_int<u8>(); }
  std::optional<u16> read_u16() { return read_int<u16>(); }
  std::optional<u32> read_u24() {
    if (!ensure(3)) return std::nullopt;
    u32 v = 0;
    for (int i = 0; i < 3; ++i) v = (v << 8) | static_cast<u8>(data_[pos_++]);
    return v;
  }
  std::optional<u32> read_u32() { return read_int<u32>(); }
  std::optional<u64> read_u64() { return read_int<u64>(); }

  std::optional<std::string_view> read_bytes(size_t n) {
    if (!ensure(n)) return std::nullopt;
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool skip(size_t n) {
    if (!ensure(n)) return false;
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  std::optional<T> read_int() {
    if (!ensure(sizeof(T))) return std::nullopt;
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>((v << 8) | static_cast<u8>(data_[pos_++]));
    }
    return v;
  }

  bool ensure(size_t n) {
    if (remaining() < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

class BinaryWriter {
 public:
  void write_u8(u8 v) { out_.push_back(static_cast<char>(v)); }
  void write_u16(u16 v) {
    write_u8(static_cast<u8>(v >> 8));
    write_u8(static_cast<u8>(v));
  }
  void write_u24(u32 v) {
    write_u8(static_cast<u8>(v >> 16));
    write_u8(static_cast<u8>(v >> 8));
    write_u8(static_cast<u8>(v));
  }
  void write_u32(u32 v) {
    write_u16(static_cast<u16>(v >> 16));
    write_u16(static_cast<u16>(v));
  }
  void write_u64(u64 v) {
    write_u32(static_cast<u32>(v >> 32));
    write_u32(static_cast<u32>(v));
  }
  void write_bytes(std::string_view bytes) { out_.append(bytes); }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

}  // namespace deepflow::protocols
