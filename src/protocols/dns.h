// DNS (RFC 1035). Parallel protocol: the 16-bit transaction id in the header
// is the paper's canonical example of an embedded distinguishing attribute.
#pragma once

#include <string>

#include "protocols/parser.h"

namespace deepflow::protocols {

class DnsParser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kDns; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kParallel;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

/// A-record query for `name` with transaction id `txn_id`.
std::string build_dns_query(u16 txn_id, std::string_view name);

/// Response to `name` with the given RCODE (0 = NOERROR, 3 = NXDOMAIN).
std::string build_dns_response(u16 txn_id, std::string_view name, u8 rcode = 0);

}  // namespace deepflow::protocols
