#include "protocols/http1.h"

#include <algorithm>
#include <array>
#include <charconv>

namespace deepflow::protocols {

namespace {

constexpr std::array<std::string_view, 9> kMethods = {
    "GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH", "TRACE",
    "CONNECT"};

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string_view first_line(std::string_view payload) {
  const size_t eol = payload.find("\r\n");
  return eol == std::string_view::npos ? payload : payload.substr(0, eol);
}

std::string_view status_reason(u32 status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Status";
  }
}

}  // namespace

std::string find_http1_header(std::string_view payload,
                              std::string_view name) {
  size_t pos = payload.find("\r\n");
  while (pos != std::string_view::npos && pos + 2 < payload.size()) {
    const size_t line_start = pos + 2;
    const size_t line_end = payload.find("\r\n", line_start);
    const std::string_view line =
        line_end == std::string_view::npos
            ? payload.substr(line_start)
            : payload.substr(line_start, line_end - line_start);
    if (line.empty()) break;  // end of headers
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos && iequals(line.substr(0, colon), name)) {
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      return std::string(value);
    }
    pos = line_end;
  }
  return {};
}

bool Http1Parser::infer(std::string_view payload) const {
  if (payload.starts_with("HTTP/1.")) return true;
  for (const std::string_view method : kMethods) {
    if (payload.size() > method.size() &&
        payload.starts_with(method) && payload[method.size()] == ' ') {
      return true;
    }
  }
  return false;
}

std::optional<ParsedMessage> Http1Parser::parse(
    std::string_view payload) const {
  if (!infer(payload)) return std::nullopt;
  ParsedMessage msg;
  msg.protocol = L7Protocol::kHttp1;
  msg.x_request_id = find_http1_header(payload, "X-Request-ID");
  msg.trace_context = find_http1_header(payload, "traceparent");

  const std::string_view line = first_line(payload);
  if (payload.starts_with("HTTP/1.")) {
    msg.type = MessageType::kResponse;
    // "HTTP/1.1 200 OK"
    const size_t sp = line.find(' ');
    if (sp == std::string_view::npos) return std::nullopt;
    const std::string_view code = line.substr(sp + 1, 3);
    u32 status = 0;
    std::from_chars(code.data(), code.data() + code.size(), status);
    if (status < 100 || status > 599) return std::nullopt;
    msg.status_code = status;
    msg.ok = status < 400;
  } else {
    msg.type = MessageType::kRequest;
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos) return std::nullopt;
    msg.method = std::string(line.substr(0, sp1));
    msg.endpoint = std::string(
        sp2 == std::string_view::npos ? line.substr(sp1 + 1)
                                      : line.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  return msg;
}

std::string build_http1_request(std::string_view method, std::string_view path,
                                const std::vector<HttpHeader>& headers,
                                std::string_view body) {
  std::string out;
  out.reserve(64 + body.size());
  out.append(method).append(" ").append(path).append(" HTTP/1.1\r\n");
  for (const auto& [key, value] : headers) {
    out.append(key).append(": ").append(value).append("\r\n");
  }
  out.append("Content-Length: ").append(std::to_string(body.size()));
  out.append("\r\n\r\n").append(body);
  return out;
}

std::string build_http1_response(u32 status,
                                 const std::vector<HttpHeader>& headers,
                                 std::string_view body) {
  std::string out;
  out.reserve(64 + body.size());
  out.append("HTTP/1.1 ").append(std::to_string(status)).append(" ");
  out.append(status_reason(status)).append("\r\n");
  for (const auto& [key, value] : headers) {
    out.append(key).append(": ").append(value).append("\r\n");
  }
  out.append("Content-Length: ").append(std::to_string(body.size()));
  out.append("\r\n\r\n").append(body);
  return out;
}

}  // namespace deepflow::protocols
