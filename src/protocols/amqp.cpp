#include "protocols/amqp.h"

#include "protocols/bytes.h"

namespace deepflow::protocols {

namespace {

constexpr u8 kFrameMethod = 1;
constexpr u8 kFrameEnd = 0xCE;
constexpr u16 kClassConnection = 10;
constexpr u16 kClassChannel = 20;
constexpr u16 kClassBasic = 60;
constexpr u16 kMethodBasicPublish = 40;
constexpr u16 kMethodBasicDeliver = 60;
constexpr u16 kMethodBasicAck = 80;
constexpr u16 kMethodChannelClose = 40;

std::string frame(u8 type, u16 channel, const std::string& body) {
  BinaryWriter w;
  w.write_u8(type);
  w.write_u16(channel);
  w.write_u32(static_cast<u32>(body.size()));
  w.write_bytes(body);
  w.write_u8(kFrameEnd);
  return std::move(w).str();
}

/// Short string (u8 length + bytes), the AMQP shortstr type.
void write_shortstr(BinaryWriter& w, std::string_view text) {
  const size_t n = std::min<size_t>(text.size(), 255);
  w.write_u8(static_cast<u8>(n));
  w.write_bytes(text.substr(0, n));
}

}  // namespace

bool AmqpParser::infer(std::string_view payload) const {
  if (payload.starts_with("AMQP\x00\x00\x09\x01")) return true;
  if (payload.size() < 8) return false;
  BinaryReader r(payload);
  const auto type = r.read_u8();
  const auto channel = r.read_u16();
  const auto size = r.read_u32();
  if (!type || !channel || !size) return false;
  // Method/header/body/heartbeat frames are types 1-4, 8.
  if (*type != kFrameMethod && *type != 2 && *type != 3 && *type != 8) {
    return false;
  }
  // Complete frames must carry the 0xCE end octet where declared; capture
  // truncation is only plausible for large bodies.
  const size_t frame_len = 7u + *size + 1u;
  if (payload.size() == frame_len) {
    return static_cast<u8>(payload[frame_len - 1]) == kFrameEnd;
  }
  return payload.size() < frame_len && payload.size() >= 250;
}

std::optional<ParsedMessage> AmqpParser::parse(
    std::string_view payload) const {
  if (!infer(payload)) return std::nullopt;
  ParsedMessage msg;
  msg.protocol = L7Protocol::kAmqp;
  if (payload.starts_with("AMQP")) {
    msg.type = MessageType::kRequest;
    msg.method = "protocol-header";
    return msg;
  }
  BinaryReader r(payload);
  const u8 type = *r.read_u8();
  r.read_u16();  // channel
  r.read_u32();  // size
  if (type != kFrameMethod) {
    // Content header/body/heartbeat: treated as continuation data.
    msg.type = MessageType::kRequest;
    msg.method = type == 8 ? "heartbeat" : "content";
    return msg;
  }
  const auto class_id = r.read_u16();
  const auto method_id = r.read_u16();
  if (!class_id || !method_id) return std::nullopt;

  if (*class_id == kClassBasic && *method_id == kMethodBasicPublish) {
    msg.type = MessageType::kRequest;
    msg.method = "basic.publish";
    // reserved-1 (u16), then exchange + routing-key shortstrs.
    r.skip(2);
    if (const auto exchange_len = r.read_u8()) {
      r.skip(*exchange_len);
      if (const auto key_len = r.read_u8()) {
        if (const auto key = r.read_bytes(
                std::min<size_t>(*key_len, r.remaining()))) {
          msg.endpoint = std::string(*key);
        }
      }
    }
    return msg;
  }
  if (*class_id == kClassBasic && *method_id == kMethodBasicAck) {
    msg.type = MessageType::kResponse;
    msg.method = "basic.ack";
    msg.ok = true;
    return msg;
  }
  if (*class_id == kClassBasic && *method_id == kMethodBasicDeliver) {
    msg.type = MessageType::kRequest;
    msg.method = "basic.deliver";
    return msg;
  }
  if (*class_id == kClassChannel && *method_id == kMethodChannelClose) {
    msg.type = MessageType::kResponse;
    msg.method = "channel.close";
    const auto reply_code = r.read_u16();
    msg.status_code = reply_code.value_or(541);
    msg.ok = false;
    return msg;
  }
  if (*class_id == kClassConnection) {
    msg.type = *method_id % 2 == 1 ? MessageType::kRequest
                                   : MessageType::kResponse;
    msg.method = "connection." + std::to_string(*method_id);
    return msg;
  }
  msg.type = MessageType::kRequest;
  msg.method = "method." + std::to_string(*class_id) + "." +
               std::to_string(*method_id);
  return msg;
}

std::string build_amqp_protocol_header() {
  return std::string("AMQP\x00\x00\x09\x01", 8);
}

std::string build_amqp_publish(u16 channel, std::string_view routing_key) {
  BinaryWriter body;
  body.write_u16(kClassBasic);
  body.write_u16(kMethodBasicPublish);
  body.write_u16(0);  // reserved-1
  write_shortstr(body, "");  // default exchange
  write_shortstr(body, routing_key);
  body.write_u8(0);  // mandatory/immediate bits
  return frame(kFrameMethod, channel, body.str());
}

std::string build_amqp_ack(u16 channel) {
  BinaryWriter body;
  body.write_u16(kClassBasic);
  body.write_u16(kMethodBasicAck);
  body.write_u64(1);  // delivery tag
  body.write_u8(0);   // multiple flag
  return frame(kFrameMethod, channel, body.str());
}

std::string build_amqp_close(u16 channel, u16 reply_code,
                             std::string_view reply_text) {
  BinaryWriter body;
  body.write_u16(kClassChannel);
  body.write_u16(kMethodChannelClose);
  body.write_u16(reply_code);
  write_shortstr(body, reply_text);
  body.write_u16(0);  // failing class id
  body.write_u16(0);  // failing method id
  return frame(kFrameMethod, channel, body.str());
}

}  // namespace deepflow::protocols
