#include "protocols/dubbo.h"

#include "protocols/bytes.h"

namespace deepflow::protocols {

namespace {

constexpr u16 kMagic = 0xdabb;
constexpr u8 kFlagRequest = 0x80;
constexpr u8 kFlagTwoWay = 0x40;
constexpr u8 kStatusOk = 20;

}  // namespace

bool DubboParser::infer(std::string_view payload) const {
  if (payload.size() < 16) return false;
  BinaryReader r(payload);
  const auto magic = r.read_u16();
  return magic && *magic == kMagic;
}

std::optional<ParsedMessage> DubboParser::parse(
    std::string_view payload) const {
  if (!infer(payload)) return std::nullopt;
  BinaryReader r(payload);
  r.read_u16();  // magic
  const u8 flags = *r.read_u8();
  const u8 status = *r.read_u8();
  const u64 request_id = *r.read_u64();
  const u32 body_len = *r.read_u32();
  (void)body_len;

  ParsedMessage msg;
  msg.protocol = L7Protocol::kDubbo;
  msg.stream_id = request_id;
  if ((flags & kFlagRequest) != 0) {
    msg.type = MessageType::kRequest;
    msg.method = "INVOKE";
    // Body (builders' layout): "service\nmethod".
    const std::string_view body = payload.substr(16);
    const size_t nl = body.find('\n');
    if (nl != std::string_view::npos) {
      msg.endpoint = std::string(body.substr(0, nl)) + "." +
                     std::string(body.substr(nl + 1));
      msg.method = std::string(body.substr(nl + 1));
    }
  } else {
    msg.type = MessageType::kResponse;
    msg.status_code = status;
    msg.ok = status == kStatusOk;
  }
  return msg;
}

std::string build_dubbo_request(u64 request_id, std::string_view service,
                                std::string_view method) {
  std::string body;
  body.append(service).push_back('\n');
  body.append(method);

  BinaryWriter w;
  w.write_u16(kMagic);
  w.write_u8(kFlagRequest | kFlagTwoWay);
  w.write_u8(0);  // status unused on requests
  w.write_u64(request_id);
  w.write_u32(static_cast<u32>(body.size()));
  w.write_bytes(body);
  return std::move(w).str();
}

std::string build_dubbo_response(u64 request_id, u8 status) {
  BinaryWriter w;
  w.write_u16(kMagic);
  w.write_u8(0);  // response
  w.write_u8(status);
  w.write_u64(request_id);
  w.write_u32(0);
  return std::move(w).str();
}

}  // namespace deepflow::protocols
