#include "protocols/dns.h"

#include "protocols/bytes.h"

namespace deepflow::protocols {

namespace {

constexpr u16 kFlagResponse = 0x8000;  // QR bit
constexpr u16 kTypeA = 1;
constexpr u16 kClassIn = 1;

/// "api.shop.svc" -> "\x03api\x04shop\x03svc\x00"
std::string encode_qname(std::string_view name) {
  std::string out;
  size_t start = 0;
  while (start <= name.size()) {
    size_t dot = name.find('.', start);
    if (dot == std::string_view::npos) dot = name.size();
    const size_t len = dot - start;
    out.push_back(static_cast<char>(len > 63 ? 63 : len));
    out.append(name.substr(start, len > 63 ? 63 : len));
    if (dot >= name.size()) break;
    start = dot + 1;
  }
  out.push_back('\0');
  return out;
}

std::optional<std::string> decode_qname(BinaryReader& r) {
  std::string out;
  for (int labels = 0; labels < 32; ++labels) {  // bounded walk
    const auto len = r.read_u8();
    if (!len) return std::nullopt;
    if (*len == 0) return out;
    if (*len > 63) return std::nullopt;  // compression pointers unsupported
    const auto label = r.read_bytes(*len);
    if (!label) return std::nullopt;
    if (!out.empty()) out.push_back('.');
    out.append(*label);
  }
  return std::nullopt;
}

std::string build_message(u16 txn_id, std::string_view name, u16 flags,
                          bool with_answer) {
  BinaryWriter w;
  w.write_u16(txn_id);
  w.write_u16(flags);
  w.write_u16(1);                        // QDCOUNT
  w.write_u16(with_answer ? 1 : 0);      // ANCOUNT
  w.write_u16(0);                        // NSCOUNT
  w.write_u16(0);                        // ARCOUNT
  w.write_bytes(encode_qname(name));
  w.write_u16(kTypeA);
  w.write_u16(kClassIn);
  if (with_answer) {
    // Minimal A record: root-pointer name, TYPE, CLASS, TTL, RDLENGTH, RDATA.
    w.write_u8(0);
    w.write_u16(kTypeA);
    w.write_u16(kClassIn);
    w.write_u32(60);
    w.write_u16(4);
    w.write_u32(0x0a000001);  // 10.0.0.1
  }
  return std::move(w).str();
}

}  // namespace

bool DnsParser::infer(std::string_view payload) const {
  if (payload.size() < 12) return false;
  BinaryReader r(payload);
  r.read_u16();  // txn id: any value
  const auto flags = r.read_u16();
  const auto qd = r.read_u16();
  const auto an = r.read_u16();
  const auto ns = r.read_u16();
  const auto ar = r.read_u16();
  if (!flags || !qd || !an || !ns || !ar) return false;
  // Plausibility: opcode 0-2, exactly one question, sane record counts.
  const u16 opcode = (*flags >> 11) & 0xf;
  return opcode <= 2 && *qd == 1 && *an <= 16 && *ns <= 16 && *ar <= 16;
}

std::optional<ParsedMessage> DnsParser::parse(std::string_view payload) const {
  if (!infer(payload)) return std::nullopt;
  BinaryReader r(payload);
  const u16 txn_id = *r.read_u16();
  const u16 flags = *r.read_u16();
  r.skip(8);  // counts
  const auto name = decode_qname(r);

  ParsedMessage msg;
  msg.protocol = L7Protocol::kDns;
  msg.stream_id = txn_id;
  msg.endpoint = name.value_or("");
  if ((flags & kFlagResponse) != 0) {
    msg.type = MessageType::kResponse;
    msg.status_code = flags & 0xf;  // RCODE
    msg.ok = msg.status_code == 0;
  } else {
    msg.type = MessageType::kRequest;
    msg.method = "QUERY";
  }
  return msg;
}

std::string build_dns_query(u16 txn_id, std::string_view name) {
  // Standard query, recursion desired.
  return build_message(txn_id, name, 0x0100, /*with_answer=*/false);
}

std::string build_dns_response(u16 txn_id, std::string_view name, u8 rcode) {
  const u16 flags = static_cast<u16>(kFlagResponse | 0x0080 | rcode);
  return build_message(txn_id, name, flags, /*with_answer=*/rcode == 0);
}

}  // namespace deepflow::protocols
