// Protocol-independent view of one application-layer message, produced by
// the per-protocol parsers. Span construction (§3.3.1) consumes this: the
// message type drives request/response pairing, the stream id drives
// parallel-protocol session matching, and the embedded X-Request-ID /
// third-party trace context feed cross-thread and third-party association.
#pragma once

#include <string>

#include "common/types.h"

namespace deepflow::protocols {

/// Application protocols DeepFlow infers out of the box (§3.3.1 cites HTTP,
/// HTTP/2, DNS, Redis, MySQL, Kafka, MQTT, Dubbo specifications).
enum class L7Protocol : u8 {
  kUnknown,
  kHttp1,
  kHttp2,
  kDns,
  kRedis,
  kMysql,
  kKafka,
  kMqtt,
  kDubbo,
  kAmqp,
};

std::string_view l7_protocol_name(L7Protocol protocol);

/// Extract the 32-hex-char trace id from a W3C traceparent header value
/// ("00-<trace-id>-<span-id>-<flags>"); empty on malformed input. Used so
/// spans that saw different hops of the same trace share one association key.
std::string extract_trace_id(std::string_view traceparent);
/// Zero-copy flavour: a view into `traceparent` itself (valid while the
/// header bytes are). The batch builder stores the view straight into its
/// arena instead of round-tripping through a std::string.
std::string_view extract_trace_id_view(std::string_view traceparent);

/// Request/response classification of one message.
enum class MessageType : u8 { kUnknown, kRequest, kResponse };

/// How requests and responses pair on one connection (§3.3.1): pipeline
/// protocols preserve ordering; parallel protocols multiplex and carry an
/// embedded correlation attribute (DNS txn id, HTTP/2 stream id, ...).
enum class SessionMatchMode : u8 { kPipeline, kParallel };

struct ParsedMessage {
  L7Protocol protocol = L7Protocol::kUnknown;
  MessageType type = MessageType::kUnknown;
  /// Verb/command: "GET", "SELECT", "PUBLISH", "ApiVersions", ...
  std::string method;
  /// Resource: URL path, SQL table hint, topic, query name, ...
  std::string endpoint;
  /// Response status in the protocol's own numbering (HTTP 200/404, MySQL
  /// 0=OK/0xff=ERR mapped to 0/1, Redis 0 ok / 1 err, ...). 0 for requests.
  u32 status_code = 0;
  /// True when a response indicates success (requests: always true).
  bool ok = true;
  /// Correlation attribute for parallel protocols (0 when absent).
  u64 stream_id = 0;
  /// X-Request-ID header value when the protocol carries one (HTTP family);
  /// empty otherwise. Used for cross-thread intra-component association.
  std::string x_request_id;
  /// W3C traceparent (or equivalent) header injected by a third-party
  /// tracing framework; empty when absent. Used for third-party span
  /// integration.
  std::string trace_context;
};

}  // namespace deepflow::protocols
