#include "protocols/parser.h"

#include "protocols/amqp.h"
#include "protocols/dns.h"
#include "protocols/dubbo.h"
#include "protocols/http1.h"
#include "protocols/http2.h"
#include "protocols/kafka.h"
#include "protocols/mqtt.h"
#include "protocols/mysql.h"
#include "protocols/redis.h"

namespace deepflow::protocols {

std::string_view l7_protocol_name(L7Protocol protocol) {
  switch (protocol) {
    case L7Protocol::kUnknown: return "unknown";
    case L7Protocol::kHttp1: return "http";
    case L7Protocol::kHttp2: return "http2";
    case L7Protocol::kDns: return "dns";
    case L7Protocol::kRedis: return "redis";
    case L7Protocol::kMysql: return "mysql";
    case L7Protocol::kKafka: return "kafka";
    case L7Protocol::kMqtt: return "mqtt";
    case L7Protocol::kDubbo: return "dubbo";
    case L7Protocol::kAmqp: return "amqp";
  }
  return "?";
}

std::string extract_trace_id(std::string_view traceparent) {
  return std::string(extract_trace_id_view(traceparent));
}

std::string_view extract_trace_id_view(std::string_view traceparent) {
  // "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex = 55 chars.
  if (traceparent.size() < 55 || !traceparent.starts_with("00-") ||
      traceparent[35] != '-') {
    return {};
  }
  return traceparent.substr(3, 32);
}

ProtocolRegistry ProtocolRegistry::with_builtin() {
  ProtocolRegistry registry;
  // Specificity order: hard magic numbers first (Dubbo), then structured
  // binary (HTTP/2, MySQL, Kafka, MQTT, DNS), then text (HTTP/1, Redis).
  registry.register_parser(std::make_unique<DubboParser>());
  registry.register_parser(std::make_unique<AmqpParser>());
  registry.register_parser(std::make_unique<Http2Parser>());
  registry.register_parser(std::make_unique<MysqlParser>());
  registry.register_parser(std::make_unique<KafkaParser>());
  registry.register_parser(std::make_unique<MqttParser>());
  registry.register_parser(std::make_unique<DnsParser>());
  registry.register_parser(std::make_unique<Http1Parser>());
  registry.register_parser(std::make_unique<RedisParser>());
  return registry;
}

void ProtocolRegistry::register_parser(
    std::unique_ptr<ProtocolParser> parser) {
  parsers_.push_back(std::move(parser));
}

const ProtocolParser* ProtocolRegistry::infer(std::string_view payload) const {
  for (const auto& parser : parsers_) {
    if (parser->infer(payload)) return parser.get();
  }
  return nullptr;
}

const ProtocolParser* ProtocolRegistry::parser_for(L7Protocol protocol) const {
  for (const auto& parser : parsers_) {
    if (parser->protocol() == protocol) return parser.get();
  }
  return nullptr;
}

}  // namespace deepflow::protocols
