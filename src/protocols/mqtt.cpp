#include "protocols/mqtt.h"

#include "protocols/bytes.h"

namespace deepflow::protocols {

namespace {

enum PacketType : u8 {
  kConnect = 1,
  kConnAck = 2,
  kPublish = 3,
  kPubAck = 4,
  kSubscribe = 8,
  kSubAck = 9,
  kPingReq = 12,
  kPingResp = 13,
  kDisconnect = 14,
};

std::string_view type_name(u8 type) {
  switch (type) {
    case kConnect: return "CONNECT";
    case kConnAck: return "CONNACK";
    case kPublish: return "PUBLISH";
    case kPubAck: return "PUBACK";
    case kSubscribe: return "SUBSCRIBE";
    case kSubAck: return "SUBACK";
    case kPingReq: return "PINGREQ";
    case kPingResp: return "PINGRESP";
    case kDisconnect: return "DISCONNECT";
    default: return "RESERVED";
  }
}

bool is_request_type(u8 type) {
  return type == kConnect || type == kPublish || type == kSubscribe ||
         type == kPingReq || type == kDisconnect;
}

/// Variable-length "remaining length" encoding (max 4 bytes).
void write_remaining_length(std::string& out, u32 length) {
  do {
    u8 byte = length % 128;
    length /= 128;
    if (length > 0) byte |= 0x80;
    out.push_back(static_cast<char>(byte));
  } while (length > 0);
}

std::optional<u32> read_remaining_length(std::string_view payload,
                                         size_t* pos) {
  u32 value = 0;
  u32 multiplier = 1;
  for (int i = 0; i < 4; ++i) {
    if (*pos >= payload.size()) return std::nullopt;
    const u8 byte = static_cast<u8>(payload[(*pos)++]);
    value += (byte & 0x7f) * multiplier;
    if ((byte & 0x80) == 0) return value;
    multiplier *= 128;
  }
  return std::nullopt;
}

}  // namespace

bool MqttParser::infer(std::string_view payload) const {
  if (payload.size() < 2) return false;
  const u8 first = static_cast<u8>(payload[0]);
  const u8 type = first >> 4;
  const u8 flags = first & 0x0f;
  if (type < kConnect || type > kDisconnect) return false;
  // Fixed-header flag nibbles are rigidly specified: 0 for most packets,
  // 0b0010 for SUBSCRIBE, QoS/dup/retain bits only for PUBLISH. This check
  // is what keeps arbitrary text ('G', '*', ...) from matching.
  if (type == kSubscribe) {
    if (flags != 0x2) return false;
  } else if (type != kPublish && flags != 0) {
    return false;
  }
  size_t pos = 1;
  const auto remaining = read_remaining_length(payload, &pos);
  if (!remaining) return false;
  switch (type) {
    case kConnect:
      // CONNECT must carry the protocol name.
      return payload.find("MQTT") != std::string_view::npos ||
             payload.find("MQIsdp") != std::string_view::npos;
    case kConnAck:
    case kPubAck:
      return *remaining == 2 && payload.size() == pos + 2;
    case kPingReq:
    case kPingResp:
    case kDisconnect:
      return *remaining == 0 && payload.size() == pos;
    case kPublish: {
      // Topic length must fit the declared remaining length.
      if (*remaining < 4 || pos + 2 > payload.size()) return false;
      const u16 topic_len =
          static_cast<u16>((static_cast<u8>(payload[pos]) << 8) |
                           static_cast<u8>(payload[pos + 1]));
      return topic_len + 2u <= *remaining &&
             pos + *remaining >= payload.size();
    }
    default:
      return *remaining >= 3 && pos + *remaining >= payload.size();
  }
}

std::optional<ParsedMessage> MqttParser::parse(
    std::string_view payload) const {
  if (!infer(payload)) return std::nullopt;
  const u8 first = static_cast<u8>(payload[0]);
  const u8 type = first >> 4;

  ParsedMessage msg;
  msg.protocol = L7Protocol::kMqtt;
  msg.method = std::string(type_name(type));
  msg.type = is_request_type(type) ? MessageType::kRequest
                                   : MessageType::kResponse;
  size_t pos = 1;
  read_remaining_length(payload, &pos);

  if (type == kPublish) {
    // Topic: u16 length + bytes.
    if (pos + 2 <= payload.size()) {
      const u16 len = static_cast<u16>((static_cast<u8>(payload[pos]) << 8) |
                                       static_cast<u8>(payload[pos + 1]));
      pos += 2;
      const size_t take = std::min<size_t>(len, payload.size() - pos);
      msg.endpoint = std::string(payload.substr(pos, take));
    }
  } else if (type == kConnAck) {
    if (pos + 2 <= payload.size()) {
      msg.status_code = static_cast<u8>(payload[pos + 1]);
      msg.ok = msg.status_code == 0;
    }
  }
  return msg;
}

std::string build_mqtt_connect(std::string_view client_id) {
  std::string body;
  BinaryWriter w;
  w.write_u16(4);
  w.write_bytes("MQTT");
  w.write_u8(4);     // protocol level 3.1.1
  w.write_u8(0x02);  // clean session
  w.write_u16(60);   // keepalive
  w.write_u16(static_cast<u16>(client_id.size()));
  w.write_bytes(client_id);
  body = std::move(w).str();

  std::string out;
  out.push_back(static_cast<char>(kConnect << 4));
  write_remaining_length(out, static_cast<u32>(body.size()));
  out.append(body);
  return out;
}

std::string build_mqtt_connack(u8 return_code) {
  std::string out;
  out.push_back(static_cast<char>(kConnAck << 4));
  write_remaining_length(out, 2);
  out.push_back('\0');  // session present = 0
  out.push_back(static_cast<char>(return_code));
  return out;
}

std::string build_mqtt_publish(std::string_view topic, std::string_view body) {
  BinaryWriter w;
  w.write_u16(static_cast<u16>(topic.size()));
  w.write_bytes(topic);
  w.write_u16(1);  // packet id (QoS 1)
  w.write_bytes(body);
  const std::string payload = std::move(w).str();

  std::string out;
  out.push_back(static_cast<char>((kPublish << 4) | 0x02));  // QoS 1
  write_remaining_length(out, static_cast<u32>(payload.size()));
  out.append(payload);
  return out;
}

std::string build_mqtt_puback(u16 packet_id) {
  std::string out;
  out.push_back(static_cast<char>(kPubAck << 4));
  write_remaining_length(out, 2);
  out.push_back(static_cast<char>(packet_id >> 8));
  out.push_back(static_cast<char>(packet_id & 0xff));
  return out;
}

}  // namespace deepflow::protocols
