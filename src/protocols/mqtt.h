// MQTT v3.1 fixed-header framing. Pipeline protocol in this codec (QoS-1
// PUBLISH/PUBACK pairs flow in order on the broker connections we model).
#pragma once

#include <string>

#include "protocols/parser.h"

namespace deepflow::protocols {

class MqttParser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kMqtt; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kPipeline;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

std::string build_mqtt_connect(std::string_view client_id);
std::string build_mqtt_connack(u8 return_code = 0);
std::string build_mqtt_publish(std::string_view topic, std::string_view body);
std::string build_mqtt_puback(u16 packet_id = 1);

}  // namespace deepflow::protocols
