// Redis serialization protocol (RESP). Pipeline protocol: commands and
// replies on one connection stay strictly ordered.
#pragma once

#include <string>
#include <vector>

#include "protocols/parser.h"

namespace deepflow::protocols {

class RedisParser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kRedis; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kPipeline;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

/// RESP array of bulk strings: {"GET", "user:42"} ->
/// "*2\r\n$3\r\nGET\r\n$7\r\nuser:42\r\n".
std::string build_redis_command(const std::vector<std::string>& parts);

/// Simple-string reply ("+OK\r\n").
std::string build_redis_ok(std::string_view text = "OK");
/// Bulk-string reply ("$5\r\nhello\r\n").
std::string build_redis_bulk(std::string_view value);
/// Error reply ("-ERR ...\r\n").
std::string build_redis_error(std::string_view message);

}  // namespace deepflow::protocols
