#include "protocols/redis.h"

#include <charconv>

namespace deepflow::protocols {

namespace {

/// Parse "<digits>\r\n" after a type byte; nullopt on malformed input.
std::optional<i64> read_length(std::string_view payload, size_t* pos) {
  const size_t eol = payload.find("\r\n", *pos);
  if (eol == std::string_view::npos) return std::nullopt;
  i64 value = 0;
  const std::string_view digits = payload.substr(*pos, eol - *pos);
  if (digits.empty()) return std::nullopt;
  const auto [next, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || next != digits.data() + digits.size()) {
    return std::nullopt;
  }
  *pos = eol + 2;
  return value;
}

std::optional<std::string> read_bulk(std::string_view payload, size_t* pos) {
  if (*pos >= payload.size() || payload[*pos] != '$') return std::nullopt;
  ++*pos;
  const auto len = read_length(payload, pos);
  if (!len || *len < 0) return std::nullopt;
  // Tolerate snapshot truncation: take what is present.
  const size_t avail = payload.size() > *pos ? payload.size() - *pos : 0;
  const size_t take = std::min(static_cast<size_t>(*len), avail);
  std::string out(payload.substr(*pos, take));
  *pos += take + 2;  // skip trailing CRLF (may run past end on truncation)
  return out;
}

}  // namespace

bool RedisParser::infer(std::string_view payload) const {
  if (payload.size() < 4) return false;
  const char type = payload[0];
  if (type == '*' || type == '$') {
    // Arrays and bulk strings must be followed by a digit (or -1 null).
    const char next = payload[1];
    return (next >= '0' && next <= '9') || next == '-';
  }
  if (type == '+' || type == '-' || type == ':') {
    return payload.find("\r\n") != std::string_view::npos;
  }
  return false;
}

std::optional<ParsedMessage> RedisParser::parse(
    std::string_view payload) const {
  if (!infer(payload)) return std::nullopt;
  ParsedMessage msg;
  msg.protocol = L7Protocol::kRedis;
  switch (payload[0]) {
    case '*': {  // command array = request
      size_t pos = 1;
      const auto count = read_length(payload, &pos);
      if (!count || *count < 1) return std::nullopt;
      const auto command = read_bulk(payload, &pos);
      if (!command) return std::nullopt;
      msg.type = MessageType::kRequest;
      msg.method = *command;
      if (*count > 1) {
        if (const auto key = read_bulk(payload, &pos)) msg.endpoint = *key;
      }
      return msg;
    }
    case '+':
      msg.type = MessageType::kResponse;
      msg.status_code = 0;
      msg.ok = true;
      return msg;
    case '-': {
      msg.type = MessageType::kResponse;
      msg.status_code = 1;
      msg.ok = false;
      const size_t eol = payload.find("\r\n");
      msg.endpoint = std::string(payload.substr(1, eol - 1));
      return msg;
    }
    case ':':
    case '$':
      msg.type = MessageType::kResponse;
      msg.status_code = 0;
      msg.ok = true;
      return msg;
    default:
      return std::nullopt;
  }
}

std::string build_redis_command(const std::vector<std::string>& parts) {
  std::string out = "*" + std::to_string(parts.size()) + "\r\n";
  for (const std::string& part : parts) {
    out += "$" + std::to_string(part.size()) + "\r\n" + part + "\r\n";
  }
  return out;
}

std::string build_redis_ok(std::string_view text) {
  return "+" + std::string(text) + "\r\n";
}

std::string build_redis_bulk(std::string_view value) {
  return "$" + std::to_string(value.size()) + "\r\n" + std::string(value) +
         "\r\n";
}

std::string build_redis_error(std::string_view message) {
  return "-ERR " + std::string(message) + "\r\n";
}

}  // namespace deepflow::protocols
