// HTTP/2 (RFC 7540): binary-framed, multiplexed. Parallel protocol — the
// stream identifier in each frame header is the correlation attribute the
// paper cites for parallel-protocol session aggregation.
//
// Framing follows the RFC (9-byte frame header); header blocks use a
// simplified literal key:value encoding rather than full HPACK, which is
// sufficient for signature inference and field extraction and keeps the
// codec honest about frame structure.
#pragma once

#include <string>
#include <vector>

#include "protocols/parser.h"

namespace deepflow::protocols {

class Http2Parser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kHttp2; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kParallel;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

using Http2Header = std::pair<std::string, std::string>;

/// HEADERS frame carrying a request (":method"/":path" pseudo-headers) on
/// the given stream. Odd stream ids are client-initiated per the RFC.
std::string build_http2_request(u32 stream_id, std::string_view method,
                                std::string_view path,
                                const std::vector<Http2Header>& headers = {});

/// HEADERS frame carrying a response (":status") on the given stream.
std::string build_http2_response(u32 stream_id, u32 status,
                                 const std::vector<Http2Header>& headers = {});

}  // namespace deepflow::protocols
