#include "protocols/mysql.h"

#include <algorithm>

namespace deepflow::protocols {

namespace {

constexpr u8 kComQuery = 0x03;
constexpr u8 kComStmtPrepare = 0x16;
constexpr u8 kComStmtExecute = 0x17;
constexpr u8 kComPing = 0x0e;
constexpr u8 kComQuit = 0x01;
constexpr u8 kOkHeader = 0x00;
constexpr u8 kErrHeader = 0xff;

u32 packet_length(std::string_view payload) {
  // 3-byte little-endian length prefix.
  return static_cast<u8>(payload[0]) | (static_cast<u8>(payload[1]) << 8) |
         (static_cast<u8>(payload[2]) << 16);
}

std::string packet(std::string_view body, u8 seq) {
  std::string out;
  const u32 len = static_cast<u32>(body.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>(seq));
  out.append(body);
  return out;
}

/// First SQL keyword, upper-cased ("select ..." -> "SELECT").
std::string sql_verb(std::string_view sql) {
  size_t start = sql.find_first_not_of(" \t\r\n");
  if (start == std::string_view::npos) return {};
  size_t end = sql.find_first_of(" \t\r\n(", start);
  if (end == std::string_view::npos) end = sql.size();
  std::string verb(sql.substr(start, end - start));
  std::transform(verb.begin(), verb.end(), verb.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return verb;
}

}  // namespace

bool MysqlParser::infer(std::string_view payload) const {
  if (payload.size() < 5) return false;
  const u32 len = packet_length(payload);
  if (len == 0 || len > 1 << 24) return false;
  const u8 seq = static_cast<u8>(payload[3]);
  const u8 first = static_cast<u8>(payload[4]);
  if (seq == 0) {
    // Request packets: known command bytes, and the declared length must be
    // consistent with the capture (snapshot truncation shortens, never
    // lengthens).
    if (payload.size() > len + 4u) return false;
    return first == kComQuery || first == kComStmtPrepare ||
           first == kComStmtExecute || first == kComPing || first == kComQuit;
  }
  // Response packets: first server packet (seq 1), declared length matching
  // the frame exactly, opening with an OK/ERR header or a small result-set
  // column count. Anything looser misclassifies text protocols whose first
  // three bytes happen to form a plausible little-endian length.
  if (seq != 1) return false;
  if (payload.size() != len + 4u) return false;
  return first == kOkHeader || first == kErrHeader ||
         (first >= 1 && first <= 64);
}

std::optional<ParsedMessage> MysqlParser::parse(
    std::string_view payload) const {
  if (!infer(payload)) return std::nullopt;
  const u8 seq = static_cast<u8>(payload[3]);
  const u8 first = static_cast<u8>(payload[4]);
  ParsedMessage msg;
  msg.protocol = L7Protocol::kMysql;
  if (seq == 0) {
    msg.type = MessageType::kRequest;
    switch (first) {
      case kComQuery: {
        const std::string_view sql = payload.substr(5);
        msg.method = sql_verb(sql);
        msg.endpoint = std::string(sql.substr(0, std::min<size_t>(sql.size(), 64)));
        break;
      }
      case kComStmtPrepare: msg.method = "STMT_PREPARE"; break;
      case kComStmtExecute: msg.method = "STMT_EXECUTE"; break;
      case kComPing: msg.method = "PING"; break;
      case kComQuit: msg.method = "QUIT"; break;
      default: msg.method = "COMMAND"; break;
    }
  } else {
    msg.type = MessageType::kResponse;
    if (first == kErrHeader) {
      msg.status_code = payload.size() >= 7
                            ? static_cast<u16>(static_cast<u8>(payload[5]) |
                                               (static_cast<u8>(payload[6]) << 8))
                            : 1;
      msg.ok = false;
    } else {
      msg.status_code = 0;
      msg.ok = true;
    }
  }
  return msg;
}

std::string build_mysql_query(std::string_view sql) {
  std::string body;
  body.push_back(static_cast<char>(kComQuery));
  body.append(sql);
  return packet(body, /*seq=*/0);
}

std::string build_mysql_ok() {
  // OK packet: header 0x00, affected_rows 0, last_insert_id 0, status, warnings.
  const std::string body{"\x00\x00\x00\x02\x00\x00\x00", 7};
  return packet(body, /*seq=*/1);
}

std::string build_mysql_error(u16 code, std::string_view message) {
  std::string body;
  body.push_back(static_cast<char>(kErrHeader));
  body.push_back(static_cast<char>(code & 0xff));
  body.push_back(static_cast<char>((code >> 8) & 0xff));
  body.append("#HY000");
  body.append(message);
  return packet(body, /*seq=*/1);
}

}  // namespace deepflow::protocols
