// Kafka wire protocol. Parallel protocol: every request carries a 32-bit
// correlation id echoed by the matching response — the distinguishing
// attribute used for session aggregation on multiplexed broker connections.
#pragma once

#include <string>

#include "protocols/parser.h"

namespace deepflow::protocols {

class KafkaParser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kKafka; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kParallel;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

/// Well-known api keys used by the builders and the method naming.
enum class KafkaApi : u16 { kProduce = 0, kFetch = 1, kMetadata = 3 };

std::string build_kafka_request(KafkaApi api, u32 correlation_id,
                                std::string_view client_id,
                                std::string_view topic);
std::string build_kafka_response(u32 correlation_id, i16 error_code = 0);

}  // namespace deepflow::protocols
