// Apache Dubbo RPC framing: 16-byte header opening with the 0xdabb magic.
// Parallel protocol: the 64-bit request id in the header correlates
// multiplexed requests and responses.
#pragma once

#include <string>

#include "protocols/parser.h"

namespace deepflow::protocols {

class DubboParser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kDubbo; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kParallel;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

std::string build_dubbo_request(u64 request_id, std::string_view service,
                                std::string_view method);
/// status 20 = OK per the Dubbo spec; anything else is an error class.
std::string build_dubbo_response(u64 request_id, u8 status = 20);

}  // namespace deepflow::protocols
