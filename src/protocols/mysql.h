// MySQL client/server protocol (command phase). Pipeline protocol.
// Packets: 3-byte little-endian length, 1-byte sequence id, then payload;
// requests open with a command byte (COM_QUERY = 0x03), responses with an
// OK (0x00), ERR (0xff) or result-set header byte.
#pragma once

#include <string>

#include "protocols/parser.h"

namespace deepflow::protocols {

class MysqlParser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kMysql; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kPipeline;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

/// COM_QUERY packet carrying `sql`.
std::string build_mysql_query(std::string_view sql);
/// OK packet (affected_rows = 0).
std::string build_mysql_ok();
/// ERR packet with the given error code and message.
std::string build_mysql_error(u16 code, std::string_view message);

}  // namespace deepflow::protocols
