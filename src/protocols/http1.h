// HTTP/1.1 (RFC 7231): the workhorse protocol of microservice traffic.
// Pipeline protocol — requests and responses on one connection stay ordered.
#pragma once

#include <string>
#include <vector>

#include "protocols/parser.h"

namespace deepflow::protocols {

class Http1Parser final : public ProtocolParser {
 public:
  L7Protocol protocol() const override { return L7Protocol::kHttp1; }
  SessionMatchMode match_mode() const override {
    return SessionMatchMode::kPipeline;
  }
  bool infer(std::string_view payload) const override;
  std::optional<ParsedMessage> parse(std::string_view payload) const override;
};

/// One header line ("X-Request-ID", "abc-123").
using HttpHeader = std::pair<std::string, std::string>;

/// Serialize a request ("GET /cart HTTP/1.1\r\nHost: ...").
std::string build_http1_request(std::string_view method, std::string_view path,
                                const std::vector<HttpHeader>& headers = {},
                                std::string_view body = {});

/// Serialize a response ("HTTP/1.1 200 OK\r\n...").
std::string build_http1_response(u32 status,
                                 const std::vector<HttpHeader>& headers = {},
                                 std::string_view body = {});

/// Case-insensitive header lookup in a raw HTTP/1.x payload; empty when
/// absent. Shared with the X-Request-ID extraction path.
std::string find_http1_header(std::string_view payload, std::string_view name);

}  // namespace deepflow::protocols
