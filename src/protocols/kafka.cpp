#include "protocols/kafka.h"

#include "protocols/bytes.h"

namespace deepflow::protocols {

namespace {

constexpr u16 kMaxApiKey = 67;   // highest assigned api key (circa the paper)
constexpr u16 kMaxApiVersion = 15;

std::string_view api_name(u16 api_key) {
  switch (api_key) {
    case 0: return "Produce";
    case 1: return "Fetch";
    case 2: return "ListOffsets";
    case 3: return "Metadata";
    case 8: return "OffsetCommit";
    case 9: return "OffsetFetch";
    case 18: return "ApiVersions";
    default: return "Api";
  }
}

/// Does the payload look like a request header (api_key/api_version/
/// correlation_id/client_id)? The client_id length must be consistent.
bool looks_like_request(std::string_view payload) {
  if (payload.size() < 14) return false;
  BinaryReader r(payload);
  const auto size = r.read_u32();
  const auto api_key = r.read_u16();
  const auto api_version = r.read_u16();
  const auto correlation = r.read_u32();
  const auto client_id_len = r.read_u16();
  if (!size || !api_key || !api_version || !correlation || !client_id_len) {
    return false;
  }
  if (*size < 10 || *size > (1u << 20)) return false;
  if (*api_key > kMaxApiKey || *api_version > kMaxApiVersion) return false;
  // client_id must fit within the declared size.
  return *client_id_len <= 256 && *client_id_len + 10u <= *size;
}

bool looks_like_response(std::string_view payload) {
  if (payload.size() < 10) return false;
  BinaryReader r(payload);
  const auto size = r.read_u32();
  if (!size) return false;
  // Responses are short control frames in this codec: declared size must
  // match the captured frame exactly (truncation only affects big bodies).
  return *size + 4 == payload.size();
}

}  // namespace

bool KafkaParser::infer(std::string_view payload) const {
  return looks_like_request(payload) || looks_like_response(payload);
}

std::optional<ParsedMessage> KafkaParser::parse(
    std::string_view payload) const {
  ParsedMessage msg;
  msg.protocol = L7Protocol::kKafka;
  if (looks_like_request(payload)) {
    BinaryReader r(payload);
    r.read_u32();  // size
    const u16 api_key = *r.read_u16();
    r.read_u16();  // api version
    const u32 correlation = *r.read_u32();
    const u16 client_id_len = *r.read_u16();
    r.skip(client_id_len);
    msg.type = MessageType::kRequest;
    msg.method = std::string(api_name(api_key));
    msg.stream_id = correlation;
    // Topic string follows (i16 length + bytes) in the builders' layout.
    if (const auto topic_len = r.read_u16()) {
      if (const auto topic = r.read_bytes(
              std::min<size_t>(*topic_len, r.remaining()))) {
        msg.endpoint = std::string(*topic);
      }
    }
    return msg;
  }
  if (looks_like_response(payload)) {
    BinaryReader r(payload);
    r.read_u32();  // size
    const auto correlation = r.read_u32();
    const auto error_code = r.read_u16();
    if (!correlation) return std::nullopt;
    msg.type = MessageType::kResponse;
    msg.stream_id = *correlation;
    msg.status_code = error_code.value_or(0);
    msg.ok = msg.status_code == 0;
    return msg;
  }
  return std::nullopt;
}

std::string build_kafka_request(KafkaApi api, u32 correlation_id,
                                std::string_view client_id,
                                std::string_view topic) {
  BinaryWriter body;
  body.write_u16(static_cast<u16>(api));
  body.write_u16(9);  // api version
  body.write_u32(correlation_id);
  body.write_u16(static_cast<u16>(client_id.size()));
  body.write_bytes(client_id);
  body.write_u16(static_cast<u16>(topic.size()));
  body.write_bytes(topic);

  BinaryWriter frame;
  frame.write_u32(static_cast<u32>(body.size()));
  frame.write_bytes(body.str());
  return std::move(frame).str();
}

std::string build_kafka_response(u32 correlation_id, i16 error_code) {
  BinaryWriter body;
  body.write_u32(correlation_id);
  body.write_u16(static_cast<u16>(error_code));

  BinaryWriter frame;
  frame.write_u32(static_cast<u32>(body.size()));
  frame.write_bytes(body.str());
  return std::move(frame).str();
}

}  // namespace deepflow::protocols
