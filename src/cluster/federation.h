// Multi-server federation: N in-process DeepFlow servers behind a
// consistent-hash ring, with replicated ingest, heartbeat failure
// detection, query-side failover and kill-a-server chaos recovery.
//
// Routing model (pinned owners, query-side failover):
//   * The PARTITION of a span is the hostname of the agent that produced
//     it — every association attribute Algorithm 1 searches on is local to
//     one request flow, and flows are stitched across partitions at query
//     time, so partitioning by agent keeps ingest embarrassingly parallel.
//   * A partition's OWNERS are the first (1 + replicas) distinct nodes met
//     walking the ring from fnv1a(host). The owner list is PINNED at the
//     ring layout: node failures do not re-shuffle ownership. Deliveries to
//     a down (or link-partitioned) owner are REFUSED — the at-least-once
//     SpanTransport keeps the batch and retries with backoff — so a node
//     that comes back inside the retry budget misses nothing, and one that
//     does not is healed by rejoin catch-up instead of by handing its range
//     to a node that never owned it (which would fragment replica history
//     and break straggler-builder determinism).
//   * FAILOVER is a query-time decision: each partition is served by its
//     first owner that is up and unsuspected. Queries therefore degrade
//     monotonically — a dead node hides exactly the partitions with no
//     live replica, and QueryTelemetry reports the split (primary /
//     failover / unavailable) instead of silently returning less.
//
// Exactly-once queries by construction: each serving node contributes only
// the span ids journaled for the partitions it was selected to serve
// (FederatedSpanSource's allowed sets), so replicated copies can never be
// double-counted no matter how the scatter-gather interleaves.
//
// Metrics under replication: the server-level aggregator cannot be used
// directly (every replica would fold the same session again), so each node
// keeps one MetricsAggregator PER OWNED PARTITION, fed by the server's
// post-dedup ingest observer. The query plane merges the aggregators of
// the serving replica of every partition into a scratch instance —
// commutative folds make the merge order irrelevant, so the result is
// byte-identical to a single server that saw the union stream.
//
// Crash recovery: kill() destroys the node's server (losing its unflushed
// window, like a real crash); restart() re-opens it over the same segment
// directory, rebuilds the partition journals and aggregators from the
// recovered warm tier, and replays the delta from surviving replicas
// (catch-up). finalize() runs an anti-entropy pass so replicas converge
// before the equivalence checks — full byte-identity after rejoin is the
// FederationChaos suite's pinned property.
//
// Concurrency: one mutex guards all federation state. Node servers do
// their own finer-grained locking; the ingest observer runs on the
// delivering thread while the federation mutex is held.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "common/fault.h"
#include "metrics/aggregator.h"
#include "server/server.h"

namespace deepflow::cluster {

struct ClusterConfig {
  /// Ring members (>= 1). 1 degenerates to a single server behind the
  /// federation API.
  u32 nodes = 3;
  /// Replica copies beyond the primary (0 = no redundancy). Effective
  /// replication factor is min(1 + replicas, nodes).
  u32 replicas = 1;
  /// Virtual ring points per node (key-distribution smoothing).
  u32 virtual_nodes = 16;
  /// Ring layout seed (same seed + same node count = same ownership).
  u64 ring_seed = 0x5eedf00dULL;
  /// Heartbeat silence (in tick() calls) before a node is suspected and
  /// queries fail over away from it.
  u64 heartbeat_timeout_ticks = 8;
  /// Replay missing spans from surviving replicas when a node restarts.
  bool catch_up_on_rejoin = true;
};

/// Federation-level counters (cluster plane only; per-node ingest/query
/// telemetry is merged separately — see ingest_telemetry / query_telemetry).
struct FederationTelemetry {
  u64 nodes = 0;             // ring size
  u64 nodes_up = 0;          // processes currently running
  u64 nodes_alive = 0;       // up AND not suspected by the detector
  u64 partitions = 0;        // registered agent partitions
  u64 batches_delivered = 0; // accepted span batches (all owners)
  u64 spans_delivered = 0;   // spans in those batches
  u64 replica_spans = 0;     // spans delivered to non-primary owners
  u64 rejected_down = 0;     // deliveries refused: target process down
  u64 rejected_partitioned = 0;  // deliveries refused: link partition fault
  u64 heartbeats = 0;        // heartbeat probes sent (up nodes x ticks)
  u64 heartbeats_lost = 0;   // probes eaten by link-partition faults
  u64 crash_faults = 0;      // kNodeCrash draws that killed a node
  u64 kills = 0;             // crashes (fault-injected + explicit kill())
  u64 restarts = 0;          // restart() calls that brought a node back
  u64 failovers = 0;         // detector transitions into `suspected`
  u64 rejoins = 0;           // nodes that completed rejoin (catch-up ran)
  u64 catch_up_spans = 0;    // spans replayed from replicas on rejoin
  u64 recovered_spans = 0;   // spans rebuilt from segment files on restart
  u64 stragglers_routed = 0;     // straggler messages accepted by >= 1 owner
  u64 stragglers_dropped = 0;    // stragglers with no consistent owner left
  u64 flows_routed = 0;          // flow records attributed to a partition
  u64 flows_unattributed = 0;    // flow records no client span ever named
  u64 spans_unattributed = 0;    // ingested spans with no partition (rare)
  u64 routing_epoch = 0;     // bumps on every alive-set change
  u64 ticks = 0;             // tick() calls
};

class Federation {
 public:
  /// Heartbeat fault lanes live far above any data-link lane: the link of
  /// node i's heartbeat stream is (kHeartbeatLaneBase + i).
  static constexpr u64 kHeartbeatLaneBase = u64{1} << 62;

  /// Deterministic per-(agent, node) data-link fault lane, shared between
  /// the transport's kTransportSend stream and the federation's
  /// kLinkPartition stream for that link.
  static constexpr u64 link_lane(u32 agent_index, u32 node) {
    return (u64{agent_index} << 20) | node;
  }

  /// `server_template` configures every node server (its metrics plane is
  /// force-disabled — the federation owns per-partition aggregation — and
  /// its storage directory, when enabled, gains a per-node suffix).
  /// `fault` (optional) powers the kNodeCrash / kLinkPartition sites.
  Federation(const netsim::ResourceRegistry* registry, ClusterConfig config,
             server::ServerConfig server_template,
             FaultInjector* fault = nullptr);

  u32 node_count() const { return static_cast<u32>(nodes_.size()); }
  u32 replication_factor() const { return replication_; }
  const HashRing& ring() const { return ring_; }

  /// Register an agent partition; returns its pinned owner list (the
  /// deployment opens one transport link per owner).
  std::vector<u32> register_agent(const std::string& host);
  /// The pinned owner list of `host` (registers it when unknown).
  std::vector<u32> owners_of(const std::string& host);

  bool node_up(u32 node) const;
  /// Up and not suspected by the heartbeat detector.
  bool node_alive(u32 node) const;
  /// False once a node has ever been killed: its reaggregation window lost
  /// state, so stragglers are no longer routed to it (replica divergence).
  bool node_straggler_consistent(u32 node) const;
  u64 routing_epoch() const;

  /// The node's server, or nullptr while it is down. Test/bench access;
  /// normal traffic goes through deliver*().
  server::DeepFlowServer* node_server(u32 node);

  // -- Ingest plane. --------------------------------------------------------

  /// Transport sink for one (agent, owner) link: ingest `spans` (from the
  /// agent whose hostname is `partition`) at `node`. Returns false WITHOUT
  /// consuming the batch when the node is down or the link's
  /// kLinkPartition draw (on `lane`) eats the delivery — the transport
  /// retries with backoff, giving at-least-once delivery per owner.
  bool deliver(u32 node, const std::string& partition,
               std::vector<agent::Span>& spans, u64 lane = kFaultSharedLane);

  /// Third-party (OpenTelemetry-style) span: replicated to every up owner
  /// of span.host. False when no owner is up (span dropped).
  bool deliver_third_party(agent::Span&& span);

  /// Out-of-window straggler from `host`'s agent: re-aggregated at the
  /// FIRST owner that is up AND straggler-consistent (one builder per
  /// partition keeps reaggregated span ids unique; co-owners receive the
  /// resulting spans via anti-entropy replay). False = dropped.
  bool deliver_straggler(const std::string& host, agent::MessageData&& message);

  /// Flow metrics: correlation maps on every up node; the RED fold lands
  /// in the owning partition's aggregator at every up owner (queries read
  /// exactly one of them).
  void ingest_flow_metrics(const FiveTuple& tuple,
                           const netsim::FlowMetrics& metrics);
  /// Device metrics: broadcast to every up node (correlation only).
  void ingest_device_metrics(const std::string& device,
                             const netsim::DeviceMetrics& metrics);

  /// Agent drain counters, accumulated federation-side (a killed node must
  /// not take the cluster-wide agent telemetry down with it).
  void note_agent_drain(const agent::AgentStats& stats);

  /// One failure-detector round: per up node, draw the kNodeCrash site
  /// (lane = node index; a hit kills the node), then the node's heartbeat
  /// through kLinkPartition (lane = kHeartbeatLaneBase + node); nodes
  /// silent past heartbeat_timeout_ticks become suspected and queries fail
  /// over away from them until heartbeats resume.
  void tick();

  /// Flush every node's reaggregation window, then run anti-entropy:
  /// replicas replay each other's missing spans until convergence, so a
  /// rejoined node serves byte-identical content. Call once, after all
  /// agents finished and transports flushed.
  void finalize();

  // -- Chaos plane. ---------------------------------------------------------

  /// Crash `node`: its server is destroyed (unflushed spans lost unless
  /// storage flush_on_close), journals and partition aggregators cleared,
  /// straggler consistency permanently revoked. False if already down.
  bool kill(u32 node);

  /// Restart a killed node over its storage directory: segment recovery
  /// rebuilds its journals/aggregators, then (catch_up_on_rejoin) the
  /// delta is replayed from surviving replicas. False if already up.
  bool restart(u32 node);

  // -- Query plane (scatter-gather over the serving replicas). --------------

  std::vector<agent::Span> query_span_list(TimestampNs from, TimestampNs to,
                                           size_t limit = ~size_t{0}) const;
  server::AssembledTrace query_trace(u64 span_id) const;
  std::vector<server::AssembledTrace> assemble_traces(
      const std::vector<u64>& span_ids, size_t workers = 1) const;

  metrics::MetricsSeries query_metrics(const std::string& service,
                                       TimestampNs from, TimestampNs to,
                                       DurationNs resolution = kSecond) const;
  metrics::ServiceMap service_map(TimestampNs from = 0,
                                  TimestampNs to = ~TimestampNs{0}) const;

  /// Canonical dumps over the SERVED content (the equivalence suites
  /// compare these byte-for-byte against a single-node run).
  std::string canonical_store_dump() const;
  std::string canonical_metrics() const;
  std::string canonical_service_map() const;

  /// Merged per-node query telemetry + federation completeness counters
  /// (accumulated over every scatter-gather plan built so far).
  server::QueryTelemetry query_telemetry() const;
  /// Merged per-node ingest telemetry + federation-held agent counters.
  server::IngestTelemetry ingest_telemetry() const;

  FederationTelemetry telemetry() const;

  /// Merged metrics exposition + deepflow_federation_* gauges.
  std::string prometheus_metrics() const;

 private:
  struct NodeState {
    std::unique_ptr<server::DeepFlowServer> server;
    /// Per-owned-partition metrics (post-dedup observer feeds these).
    std::map<std::string, std::unique_ptr<metrics::MetricsAggregator>> aggs;
    /// Per-owned-partition span-id journals, in ingest order (the allowed
    /// sets of the query plane; also the rejoin replay source).
    std::map<std::string, std::vector<u64>> ids;
    u64 last_heartbeat = 0;
    bool up = true;
    bool suspected = false;
    bool straggler_consistent = true;
  };

  /// One scatter-gather routing decision: which node serves each
  /// partition, and the per-source allowed id sets.
  struct Plan {
    std::vector<u32> source_node;                   // source -> node index
    std::vector<const server::SpanStore*> stores;   // per source
    std::vector<std::unordered_set<u64>> allowed;   // per source
    std::map<std::string, u32> partition_node;      // partition -> node
    u64 primary = 0;
    u64 failover = 0;
    u64 unavailable = 0;
  };

  std::unique_ptr<server::DeepFlowServer> make_node_server(u32 node);
  /// Ingest observer body for node `node` (federation mutex already held
  /// by the delivering call).
  void on_ingest(u32 node, const agent::Span& span);
  /// Partition of a span outside any delivery context (restart rebuild):
  /// its host, or the recorded partition of its capturing device.
  std::string partition_of(const agent::Span& span) const;
  metrics::MetricsAggregator& agg_for(NodeState& node,
                                      const std::string& partition);
  std::vector<u32>& owners_locked(const std::string& host);
  void kill_locked(u32 node);
  /// Replay spans node `node` is missing from surviving co-owners; returns
  /// the number of spans its journals gained.
  u64 catch_up_locked(u32 node);
  Plan build_plan_locked() const;
  std::unique_ptr<metrics::MetricsAggregator> merged_aggregator_locked(
      const Plan& plan) const;
  std::vector<server::AssembledTrace> assemble_locked(
      const Plan& plan, const std::vector<u64>& span_ids,
      size_t workers) const;

  const netsim::ResourceRegistry* registry_;
  ClusterConfig config_;
  server::ServerConfig server_template_;
  FaultInjector* fault_;
  HashRing ring_;
  u32 replication_;
  metrics::MetricsConfig metrics_config_;  // partition/scratch aggregators

  mutable std::mutex mu_;
  std::vector<NodeState> nodes_;
  /// partition (agent host) -> pinned owner list, first = primary.
  std::map<std::string, std::vector<u32>> partitions_;
  /// device name -> partition, learned from net spans delivered in an
  /// agent's context; attributes recovered net spans (host == "") after a
  /// restart. Survives node crashes (federation-lifetime state).
  std::unordered_map<std::string, std::string> device_partition_;
  /// canonical five-tuple -> partition of the client-side agent, learned
  /// from client sys spans; routes flow-metric folds.
  std::unordered_map<FiveTuple, std::string, FiveTupleHash> flow_dir_;
  /// Delivery context: the partition currently being ingested ("" outside
  /// deliver(), where spans self-attribute via host/device).
  std::string current_partition_;

  u64 ticks_ = 0;
  u64 epoch_ = 0;

  // FederationTelemetry tallies (under mu_).
  u64 batches_delivered_ = 0;
  u64 spans_delivered_ = 0;
  u64 replica_spans_ = 0;
  u64 rejected_down_ = 0;
  u64 rejected_partitioned_ = 0;
  u64 heartbeats_ = 0;
  u64 heartbeats_lost_ = 0;
  u64 crash_faults_ = 0;
  u64 kills_ = 0;
  u64 restarts_ = 0;
  u64 failovers_ = 0;
  u64 rejoins_ = 0;
  u64 catch_up_spans_ = 0;
  u64 recovered_spans_ = 0;
  u64 stragglers_routed_ = 0;
  u64 stragglers_dropped_ = 0;
  u64 flows_routed_ = 0;
  u64 flows_unattributed_ = 0;
  u64 spans_unattributed_ = 0;

  /// Query-plane completeness accumulation (every plan built) and the
  /// federated assembler's counters (per-query assemblers are ephemeral).
  mutable struct {
    u64 plans = 0;
    u64 fanout_nodes = 0;
    u64 partitions_total = 0;
    u64 partitions_primary = 0;
    u64 partitions_failover = 0;
    u64 partitions_unavailable = 0;
  } fed_query_;
  mutable server::AssemblerCounters fed_assembler_;

  // Agent drain counters (federation-held: see note_agent_drain).
  u64 agent_drain_batches_ = 0;
  u64 agent_drain_records_ = 0;
  u64 agent_staging_waits_ = 0;
  u64 agent_perf_lost_ = 0;
  std::vector<u64> agent_perf_lost_per_cpu_;
  u64 agent_enter_map_drops_ = 0;
};

}  // namespace deepflow::cluster
