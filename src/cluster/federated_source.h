// FederatedSpanSource: the scatter-gather SpanReadBackend over the span
// stores of multiple live cluster nodes.
//
// The trace assembler (Algorithm 1) needs exactly the three read operations
// of server::SpanReadBackend; this implementation unions N stores under
// them. Replicated ingest means the same span (same id, identical content)
// lives in every owner's store, so the union deduplicates BY SPAN ID,
// keeping the copy from the earliest source — which source wins is
// invisible to callers because replicas are byte-identical.
//
// Each source may carry an optional `allowed` id set restricting which of
// its spans participate (the federation passes each serving node exactly
// the ids of the partitions it was selected to serve, making the union
// exactly-once BY CONSTRUCTION even when a store holds stale or partial
// copies of partitions another node serves).
//
// materialize_rows must route each row pointer back to the store that owns
// it; row()/search_rows record the owner of every pointer they hand out in
// a shared-mutex-guarded map, honouring the backend's thread-safety
// contract (concurrent assemblies on a ThreadPool).
#pragma once

#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "server/span_store.h"
#include "server/store_backend.h"

namespace deepflow::cluster {

class FederatedSpanSource : public server::SpanReadBackend {
 public:
  struct Source {
    const server::SpanStore* store = nullptr;
    /// nullptr = every span of the store participates.
    const std::unordered_set<u64>* allowed = nullptr;
  };

  explicit FederatedSpanSource(std::vector<Source> sources)
      : sources_(std::move(sources)) {}

  /// First source (in vector order) holding an allowed row for `span_id`.
  const server::SpanRow* row(u64 span_id) const override;

  /// Union of the per-source matches, ascending span id, deduplicated by
  /// id (earliest source wins).
  std::vector<const server::SpanRow*> search_rows(
      const server::SearchFilter& filter) const override;

  /// Positional batch materialization, each row routed to its owning store.
  std::vector<agent::Span> materialize_rows(
      const std::vector<const server::SpanRow*>& rows) const override;

 private:
  bool allowed(size_t source, u64 span_id) const {
    const auto* set = sources_[source].allowed;
    return set == nullptr || set->contains(span_id);
  }
  void note_owner(const server::SpanRow* row, size_t source) const;

  std::vector<Source> sources_;
  mutable std::shared_mutex owner_mu_;
  mutable std::unordered_map<const server::SpanRow*, size_t> owner_;
};

}  // namespace deepflow::cluster
