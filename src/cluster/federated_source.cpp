#include "cluster/federated_source.h"

#include <algorithm>

namespace deepflow::cluster {

void FederatedSpanSource::note_owner(const server::SpanRow* row,
                                     size_t source) const {
  {
    std::shared_lock<std::shared_mutex> lock(owner_mu_);
    if (owner_.contains(row)) return;
  }
  std::lock_guard<std::shared_mutex> lock(owner_mu_);
  owner_.try_emplace(row, source);
}

const server::SpanRow* FederatedSpanSource::row(u64 span_id) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (!allowed(i, span_id)) continue;
    const server::SpanRow* r = sources_[i].store->row(span_id);
    if (r != nullptr) {
      note_owner(r, i);
      return r;
    }
  }
  return nullptr;
}

std::vector<const server::SpanRow*> FederatedSpanSource::search_rows(
    const server::SearchFilter& filter) const {
  // Each store returns ascending span ids with no duplicates; an N-way
  // sorted merge with id dedup preserves both contract clauses. Earliest
  // source wins ties (replicated copies share ids and content).
  std::vector<std::vector<const server::SpanRow*>> per_source;
  per_source.reserve(sources_.size());
  size_t total = 0;
  for (size_t i = 0; i < sources_.size(); ++i) {
    std::vector<const server::SpanRow*> rows =
        sources_[i].store->search_rows(filter);
    if (sources_[i].allowed != nullptr) {
      std::erase_if(rows, [&](const server::SpanRow* r) {
        return !sources_[i].allowed->contains(r->span.span_id);
      });
    }
    for (const server::SpanRow* r : rows) note_owner(r, i);
    total += rows.size();
    per_source.push_back(std::move(rows));
  }

  std::vector<const server::SpanRow*> out;
  out.reserve(total);
  std::vector<size_t> cursor(per_source.size(), 0);
  while (true) {
    size_t best = per_source.size();
    u64 best_id = 0;
    for (size_t i = 0; i < per_source.size(); ++i) {
      if (cursor[i] >= per_source[i].size()) continue;
      const u64 id = per_source[i][cursor[i]]->span.span_id;
      if (best == per_source.size() || id < best_id) {
        best = i;
        best_id = id;
      }
    }
    if (best == per_source.size()) break;
    out.push_back(per_source[best][cursor[best]]);
    for (size_t i = 0; i < per_source.size(); ++i) {
      while (cursor[i] < per_source[i].size() &&
             per_source[i][cursor[i]]->span.span_id == best_id) {
        ++cursor[i];
      }
    }
  }
  return out;
}

std::vector<agent::Span> FederatedSpanSource::materialize_rows(
    const std::vector<const server::SpanRow*>& rows) const {
  // Group by owning store (one materialize_rows call per store involved,
  // preserving its batch tag-cache behaviour), then reassemble positionally.
  std::vector<agent::Span> out(rows.size());
  std::vector<std::vector<const server::SpanRow*>> batch(sources_.size());
  std::vector<std::vector<size_t>> slots(sources_.size());
  {
    std::shared_lock<std::shared_mutex> lock(owner_mu_);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] == nullptr) continue;  // contract: nullptr -> empty span
      const auto it = owner_.find(rows[i]);
      // Rows can only come from this backend's own row()/search_rows(), so
      // the owner is always recorded; an unknown pointer yields an empty
      // span rather than probing a store that does not own it.
      if (it == owner_.end()) continue;
      batch[it->second].push_back(rows[i]);
      slots[it->second].push_back(i);
    }
  }
  for (size_t s = 0; s < sources_.size(); ++s) {
    if (batch[s].empty()) continue;
    std::vector<agent::Span> spans = sources_[s].store->materialize_rows(batch[s]);
    for (size_t k = 0; k < spans.size(); ++k) {
      out[slots[s][k]] = std::move(spans[k]);
    }
  }
  return out;
}

}  // namespace deepflow::cluster
