// Consistent-hash ring over server nodes (the federation's routing core).
//
// Every node contributes `virtual_nodes` points, each a mix of (seed, node,
// replica), sorted on a u64 ring. A key hashes to a position; its OWNERS are
// the first `count` DISTINCT nodes encountered walking clockwise from that
// position. Virtual points smooth the key distribution, and because a
// node's points depend only on (seed, node index), adding node N+1 moves
// only the keys whose walk now meets one of N+1's points — the classic
// consistent-hashing stability property (pinned by the HashRing tests).
//
// The ring is immutable after construction: node failures do NOT reshape it
// (the federation routes around dead owners instead — see federation.h), so
// a key's owner list is a stable, deterministic function of the cluster
// config alone.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"

namespace deepflow::cluster {

class HashRing {
 public:
  /// `nodes` >= 1 ring members, `virtual_nodes` >= 1 points per member.
  HashRing(u32 nodes, u32 virtual_nodes, u64 seed);

  u32 nodes() const { return nodes_; }

  /// The first distinct node clockwise from `key_hash`.
  u32 primary(u64 key_hash) const;

  /// The first min(count, nodes) distinct nodes clockwise from `key_hash`,
  /// in walk order (owners(h, 1)[0] == primary(h)).
  std::vector<u32> owners(u64 key_hash, size_t count) const;

  /// Every node exactly once, in clockwise walk order from `key_hash` —
  /// the failover preference order for keys at that position.
  std::vector<u32> walk(u64 key_hash) const;

 private:
  u32 nodes_;
  std::vector<std::pair<u64, u32>> points_;  // (ring position, node), sorted
};

}  // namespace deepflow::cluster
