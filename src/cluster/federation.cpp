#include "cluster/federation.h"

#include <algorithm>
#include <tuple>

#include "cluster/federated_source.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "metrics/exposition.h"
#include "server/canonical.h"

namespace deepflow::cluster {

Federation::Federation(const netsim::ResourceRegistry* registry,
                       ClusterConfig config,
                       server::ServerConfig server_template,
                       FaultInjector* fault)
    : registry_(registry),
      config_(config),
      server_template_(std::move(server_template)),
      fault_(fault),
      ring_(config.nodes > 0 ? config.nodes : 1, config.virtual_nodes,
            config.ring_seed) {
  config_.nodes = ring_.nodes();
  replication_ = std::min<u32>(1 + config_.replicas, config_.nodes);
  metrics_config_ = server_template_.metrics;
  metrics_config_.enabled = true;
  nodes_.resize(config_.nodes);
  for (u32 i = 0; i < config_.nodes; ++i) {
    nodes_[i].server = make_node_server(i);
  }
}

std::unique_ptr<server::DeepFlowServer> Federation::make_node_server(
    u32 node) {
  server::ServerConfig cfg = server_template_;
  // The federation owns metrics (per-partition aggregators): a node-level
  // aggregator would double-count every replicated session.
  cfg.metrics.enabled = false;
  if (cfg.storage.enabled) {
    cfg.storage.dir += "/node-" + std::to_string(node);
  }
  auto srv = std::make_unique<server::DeepFlowServer>(registry_, cfg);
  srv->set_ingest_observer(
      [this, node](const agent::Span& span) { on_ingest(node, span); });
  return srv;
}

std::vector<u32>& Federation::owners_locked(const std::string& host) {
  const auto it = partitions_.find(host);
  if (it != partitions_.end()) return it->second;
  return partitions_
      .emplace(host, ring_.owners(fnv1a(host), replication_))
      .first->second;
}

std::vector<u32> Federation::register_agent(const std::string& host) {
  std::lock_guard<std::mutex> lock(mu_);
  return owners_locked(host);
}

std::vector<u32> Federation::owners_of(const std::string& host) {
  std::lock_guard<std::mutex> lock(mu_);
  return owners_locked(host);
}

bool Federation::node_up(u32 node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node < nodes_.size() && nodes_[node].up;
}

bool Federation::node_alive(u32 node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node < nodes_.size() && nodes_[node].up && !nodes_[node].suspected;
}

bool Federation::node_straggler_consistent(u32 node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node < nodes_.size() && nodes_[node].straggler_consistent;
}

u64 Federation::routing_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

server::DeepFlowServer* Federation::node_server(u32 node) {
  std::lock_guard<std::mutex> lock(mu_);
  return node < nodes_.size() ? nodes_[node].server.get() : nullptr;
}

std::string Federation::partition_of(const agent::Span& span) const {
  if (!span.host.empty()) return span.host;
  if (!span.device_name.empty()) {
    const auto it = device_partition_.find(span.device_name);
    if (it != device_partition_.end()) return it->second;
  }
  return {};
}

metrics::MetricsAggregator& Federation::agg_for(NodeState& node,
                                                const std::string& partition) {
  auto it = node.aggs.find(partition);
  if (it == node.aggs.end()) {
    it = node.aggs
             .emplace(partition, std::make_unique<metrics::MetricsAggregator>(
                                     registry_, metrics_config_))
             .first;
  }
  return *it->second;
}

void Federation::on_ingest(u32 node, const agent::Span& span) {
  // Runs under mu_ (held by the delivering call) on the node server's
  // post-dedup ingest path: every span counted here is stored exactly once
  // at this node.
  std::string partition =
      !current_partition_.empty() ? current_partition_ : partition_of(span);
  if (partition.empty()) {
    ++spans_unattributed_;
    return;  // stored but unserved: no partition can claim it
  }
  if (!span.device_name.empty()) {
    device_partition_.try_emplace(span.device_name, partition);
  }
  if (span.kind == agent::SpanKind::kSystem && !span.from_server_side) {
    // Mirror of the aggregator's flow directory, at partition granularity:
    // routes later flow-metric folds to the owning partition.
    flow_dir_.try_emplace(span.tuple.canonical(), partition);
  }
  NodeState& state = nodes_[node];
  if (span.span_id != 0) state.ids[partition].push_back(span.span_id);
  agg_for(state, partition).record_span(span);
}

bool Federation::deliver(u32 node, const std::string& partition,
                         std::vector<agent::Span>& spans, u64 lane) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = nodes_[node];
  if (!state.up) {
    ++rejected_down_;
    return false;
  }
  if (fault_ != nullptr && fault_->enabled(FaultSite::kLinkPartition)) {
    if (fault_->decide(FaultSite::kLinkPartition, kFaultDrop, lane).drop) {
      ++rejected_partitioned_;
      return false;
    }
  }
  ++batches_delivered_;
  spans_delivered_ += spans.size();
  if (owners_locked(partition).front() != node) {
    replica_spans_ += spans.size();
  }
  current_partition_ = partition;
  state.server->ingest_batch(std::move(spans));
  current_partition_.clear();
  spans.clear();
  return true;
}

bool Federation::deliver_third_party(agent::Span&& span) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<u32>& owners = owners_locked(span.host);
  u64 delivered = 0;
  current_partition_ = span.host;
  for (const u32 node : owners) {
    if (!nodes_[node].up) continue;
    agent::Span copy = span;
    nodes_[node].server->ingest_third_party(std::move(copy));
    ++delivered;
  }
  current_partition_.clear();
  if (delivered == 0) ++rejected_down_;
  return delivered > 0;
}

bool Federation::deliver_straggler(const std::string& host,
                                   agent::MessageData&& message) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<u32>& owners = owners_locked(host);
  // Exactly ONE owner re-aggregates a partition's straggler stream. Span
  // ids come from a process-global counter, so two owners independently
  // re-aggregating the same stream would store the same content under
  // different ids — and anti-entropy would then cross-replay both copies,
  // duplicating content. The single builder's spans reach the co-owners
  // through catch-up replay instead, ids preserved. A restarted owner is
  // ineligible (straggler_consistent): it lost its window state, so it
  // would re-aggregate a partial stream.
  for (const u32 node : owners) {
    NodeState& state = nodes_[node];
    if (!state.up || !state.straggler_consistent) continue;
    state.server->ingest_straggler(host, std::move(message));
    ++stragglers_routed_;
    return true;
  }
  ++stragglers_dropped_;
  return false;
}

void Federation::ingest_flow_metrics(const FiveTuple& tuple,
                                     const netsim::FlowMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  // Correlation map (metrics_for lookups) on every running node; the node
  // aggregators are disabled, so this cannot double-count.
  for (NodeState& state : nodes_) {
    if (state.up) state.server->ingest_flow_metrics(tuple, metrics);
  }
  const auto dir = flow_dir_.find(tuple.canonical());
  if (dir == flow_dir_.end()) {
    ++flows_unattributed_;
    return;
  }
  const std::string& partition = dir->second;
  for (const u32 node : owners_locked(partition)) {
    if (!nodes_[node].up) continue;
    agg_for(nodes_[node], partition).record_flow(tuple, metrics);
  }
  ++flows_routed_;
}

void Federation::ingest_device_metrics(const std::string& device,
                                       const netsim::DeviceMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  for (NodeState& state : nodes_) {
    if (state.up) state.server->ingest_device_metrics(device, metrics);
  }
}

void Federation::note_agent_drain(const agent::AgentStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  agent_drain_batches_ += stats.drain_batches;
  agent_drain_records_ += stats.drain_batch_records;
  agent_staging_waits_ += stats.staging_ring_waits;
  agent_perf_lost_ += stats.perf_lost;
  if (agent_perf_lost_per_cpu_.size() < stats.perf_lost_per_cpu.size()) {
    agent_perf_lost_per_cpu_.resize(stats.perf_lost_per_cpu.size());
  }
  for (size_t cpu = 0; cpu < stats.perf_lost_per_cpu.size(); ++cpu) {
    agent_perf_lost_per_cpu_[cpu] += stats.perf_lost_per_cpu[cpu];
  }
  agent_enter_map_drops_ += stats.enter_map_record_drops;
}

void Federation::tick() {
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
  for (u32 i = 0; i < nodes_.size(); ++i) {
    NodeState& state = nodes_[i];
    if (!state.up) continue;
    if (fault_ != nullptr && fault_->enabled(FaultSite::kNodeCrash)) {
      if (fault_->decide(FaultSite::kNodeCrash, kFaultDrop, i).drop) {
        ++crash_faults_;
        kill_locked(i);
        continue;
      }
    }
    ++heartbeats_;
    bool lost = false;
    if (fault_ != nullptr && fault_->enabled(FaultSite::kLinkPartition)) {
      lost = fault_
                 ->decide(FaultSite::kLinkPartition, kFaultDrop,
                          kHeartbeatLaneBase + i)
                 .drop;
    }
    if (lost) {
      ++heartbeats_lost_;
    } else {
      state.last_heartbeat = ticks_;
    }
    const bool suspect =
        ticks_ - state.last_heartbeat > config_.heartbeat_timeout_ticks;
    if (suspect != state.suspected) {
      state.suspected = suspect;
      ++epoch_;
      if (suspect) ++failovers_;
    }
  }
}

void Federation::kill_locked(u32 node) {
  NodeState& state = nodes_[node];
  state.server.reset();  // crash: the unflushed window dies with the process
  state.aggs.clear();
  state.ids.clear();
  state.up = false;
  state.suspected = false;
  state.straggler_consistent = false;
  ++kills_;
  ++epoch_;
}

bool Federation::kill(u32 node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node >= nodes_.size() || !nodes_[node].up) return false;
  kill_locked(node);
  return true;
}

bool Federation::restart(u32 node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node >= nodes_.size() || nodes_[node].up) return false;
  NodeState& state = nodes_[node];
  state.server = make_node_server(node);
  // Rebuild the partition journals and aggregators from whatever the
  // segment recovery brought back (attribution: span host, or the
  // federation's device->partition memory for net spans).
  for (const agent::Span& span : state.server->store().recovered_spans()) {
    const std::string partition = partition_of(span);
    if (partition.empty()) {
      ++spans_unattributed_;
      continue;
    }
    if (span.span_id != 0) state.ids[partition].push_back(span.span_id);
    agg_for(state, partition).record_span(span);
    ++recovered_spans_;
  }
  state.up = true;
  state.suspected = false;
  state.last_heartbeat = ticks_;
  ++restarts_;
  ++epoch_;
  if (config_.catch_up_on_rejoin) {
    catch_up_locked(node);
    ++rejoins_;
  }
  return true;
}

u64 Federation::catch_up_locked(u32 node) {
  NodeState& state = nodes_[node];
  if (!state.up) return 0;
  u64 replayed = 0;
  for (const auto& [host, owners] : partitions_) {
    if (std::find(owners.begin(), owners.end(), node) == owners.end()) {
      continue;
    }
    for (const u32 donor : owners) {
      if (donor == node || !nodes_[donor].up) continue;
      const auto journal = nodes_[donor].ids.find(host);
      if (journal == nodes_[donor].ids.end()) continue;
      std::unordered_set<u64> have;
      const auto mine = state.ids.find(host);
      if (mine != state.ids.end()) {
        have.insert(mine->second.begin(), mine->second.end());
      }
      const server::SpanStore& donor_store = nodes_[donor].server->store();
      const size_t before =
          mine != state.ids.end() ? mine->second.size() : size_t{0};
      for (const u64 id : journal->second) {
        if (have.contains(id)) continue;
        const server::SpanRow* row = donor_store.row(id);
        if (row == nullptr) continue;
        // Row spans carry no decoded tags; the tag blob is a pure function
        // of the span's fixed columns, so re-ingesting the copy re-encodes
        // byte-identical content at this node.
        agent::Span copy = row->span;
        current_partition_ = host;
        state.server->ingest(std::move(copy));
        current_partition_.clear();
      }
      const auto after = state.ids.find(host);
      const size_t now = after != state.ids.end() ? after->second.size() : 0;
      replayed += now - before;
    }
  }
  catch_up_spans_ += replayed;
  return replayed;
}

void Federation::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  for (NodeState& state : nodes_) {
    if (state.up) state.server->finalize();
  }
  // Anti-entropy: replicas pull each other's missing spans (transport
  // give-ups during partitions, straggler-derived spans a rejoined node
  // never re-aggregated) until a full quiet pass.
  for (size_t pass = 0; pass <= nodes_.size(); ++pass) {
    u64 progress = 0;
    for (u32 i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].up) progress += catch_up_locked(i);
    }
    if (progress == 0) break;
  }
}

Federation::Plan Federation::build_plan_locked() const {
  Plan plan;
  std::map<u32, u32> source_of;  // node index -> source slot
  for (const auto& [host, owners] : partitions_) {
    const NodeState* serving = nullptr;
    u32 serving_node = 0;
    bool is_primary = false;
    for (size_t k = 0; k < owners.size(); ++k) {
      const NodeState& candidate = nodes_[owners[k]];
      if (candidate.up && !candidate.suspected) {
        serving = &candidate;
        serving_node = owners[k];
        is_primary = (k == 0);
        break;
      }
    }
    if (serving == nullptr) {
      ++plan.unavailable;
      continue;
    }
    if (is_primary) {
      ++plan.primary;
    } else {
      ++plan.failover;
    }
    u32 slot;
    const auto it = source_of.find(serving_node);
    if (it == source_of.end()) {
      slot = static_cast<u32>(plan.stores.size());
      source_of.emplace(serving_node, slot);
      plan.source_node.push_back(serving_node);
      plan.stores.push_back(&serving->server->store());
      plan.allowed.emplace_back();
    } else {
      slot = it->second;
    }
    const auto journal = serving->ids.find(host);
    if (journal != serving->ids.end()) {
      plan.allowed[slot].insert(journal->second.begin(),
                                journal->second.end());
    }
    plan.partition_node.emplace(host, serving_node);
  }
  ++fed_query_.plans;
  fed_query_.fanout_nodes += plan.stores.size();
  fed_query_.partitions_total += partitions_.size();
  fed_query_.partitions_primary += plan.primary;
  fed_query_.partitions_failover += plan.failover;
  fed_query_.partitions_unavailable += plan.unavailable;
  return plan;
}

std::unique_ptr<metrics::MetricsAggregator> Federation::merged_aggregator_locked(
    const Plan& plan) const {
  auto merged =
      std::make_unique<metrics::MetricsAggregator>(registry_, metrics_config_);
  for (const auto& [partition, node] : plan.partition_node) {
    const auto it = nodes_[node].aggs.find(partition);
    if (it != nodes_[node].aggs.end()) merged->merge_from(*it->second);
  }
  return merged;
}

std::vector<agent::Span> Federation::query_span_list(TimestampNs from,
                                                     TimestampNs to,
                                                     size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Plan plan = build_plan_locked();
  // Merge the per-source time indexes on (start, id) — the same order the
  // single store's merged shard scan produces.
  std::vector<std::tuple<TimestampNs, u64, u32>> entries;
  for (u32 s = 0; s < plan.stores.size(); ++s) {
    for (const u64 id : plan.stores[s]->span_list(from, to)) {
      if (!plan.allowed[s].contains(id)) continue;
      const server::SpanRow* row = plan.stores[s]->row(id);
      if (row == nullptr) continue;
      entries.emplace_back(row->span.start_ts, id, s);
    }
  }
  std::sort(entries.begin(), entries.end());
  if (entries.size() > limit) entries.resize(limit);
  // Materialize per source (batched: tag-cache friendly), then reassemble
  // in merged order.
  std::vector<std::vector<u64>> batch(plan.stores.size());
  std::vector<std::vector<size_t>> slots(plan.stores.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const auto& [ts, id, source] = entries[i];
    batch[source].push_back(id);
    slots[source].push_back(i);
  }
  std::vector<agent::Span> out(entries.size());
  for (u32 s = 0; s < plan.stores.size(); ++s) {
    if (batch[s].empty()) continue;
    std::vector<agent::Span> spans = plan.stores[s]->materialize_many(batch[s]);
    for (size_t k = 0; k < spans.size(); ++k) {
      out[slots[s][k]] = std::move(spans[k]);
    }
  }
  return out;
}

std::vector<server::AssembledTrace> Federation::assemble_locked(
    const Plan& plan, const std::vector<u64>& span_ids, size_t workers) const {
  std::vector<FederatedSpanSource::Source> sources;
  sources.reserve(plan.stores.size());
  for (u32 s = 0; s < plan.stores.size(); ++s) {
    sources.push_back({plan.stores[s], &plan.allowed[s]});
  }
  const FederatedSpanSource source(std::move(sources));
  const server::TraceAssembler assembler(&source, server_template_.assembler);
  std::vector<server::AssembledTrace> out(span_ids.size());
  if (workers <= 1 || span_ids.size() <= 1) {
    for (size_t i = 0; i < span_ids.size(); ++i) {
      out[i] = assembler.assemble(span_ids[i]);
    }
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(span_ids.size(), [&](size_t i) {
      out[i] = assembler.assemble(span_ids[i]);
    });
  }
  const server::AssemblerCounters counters = assembler.counters();
  fed_assembler_.traces += counters.traces;
  fed_assembler_.search_iterations += counters.search_iterations;
  fed_assembler_.spans += counters.spans;
  fed_assembler_.orphan_spans += counters.orphan_spans;
  fed_assembler_.lost_placeholders += counters.lost_placeholders;
  return out;
}

server::AssembledTrace Federation::query_trace(u64 span_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Plan plan = build_plan_locked();
  return std::move(assemble_locked(plan, {span_id}, 1).front());
}

std::vector<server::AssembledTrace> Federation::assemble_traces(
    const std::vector<u64>& span_ids, size_t workers) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Plan plan = build_plan_locked();
  return assemble_locked(plan, span_ids, workers);
}

metrics::MetricsSeries Federation::query_metrics(const std::string& service,
                                                 TimestampNs from,
                                                 TimestampNs to,
                                                 DurationNs resolution) const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_aggregator_locked(build_plan_locked())
      ->query_metrics(service, from, to, resolution);
}

metrics::ServiceMap Federation::service_map(TimestampNs from,
                                            TimestampNs to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_aggregator_locked(build_plan_locked())->service_map(from, to);
}

std::string Federation::canonical_store_dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Plan plan = build_plan_locked();
  std::vector<std::string> lines;
  for (u32 s = 0; s < plan.stores.size(); ++s) {
    std::vector<u64> ids(plan.allowed[s].begin(), plan.allowed[s].end());
    for (agent::Span& span : plan.stores[s]->materialize_many(ids)) {
      lines.push_back(server::canonical_span(span));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string Federation::canonical_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_aggregator_locked(build_plan_locked())->canonical_metrics();
}

std::string Federation::canonical_service_map() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_aggregator_locked(build_plan_locked())
      ->canonical_service_map();
}

server::QueryTelemetry Federation::query_telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  server::QueryTelemetry t;
  for (const NodeState& state : nodes_) {
    if (!state.up) continue;
    const server::QueryTelemetry q = state.server->query_telemetry();
    t.searches += q.searches;
    t.search_keys += q.search_keys;
    t.search_hits += q.search_hits;
    t.rows_touched += q.rows_touched;
    t.shard_locks += q.shard_locks;
    t.tag_cache_hits += q.tag_cache_hits;
  }
  t.traces_assembled = fed_assembler_.traces;
  t.assembly_iterations = fed_assembler_.search_iterations;
  t.assembled_spans = fed_assembler_.spans;
  t.orphan_spans = fed_assembler_.orphan_spans;
  t.lost_placeholders = fed_assembler_.lost_placeholders;
  t.fanout_nodes = fed_query_.fanout_nodes;
  t.partitions_total = fed_query_.partitions_total;
  t.partitions_primary = fed_query_.partitions_primary;
  t.partitions_failover = fed_query_.partitions_failover;
  t.partitions_unavailable = fed_query_.partitions_unavailable;
  return t;
}

server::IngestTelemetry Federation::ingest_telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  server::IngestTelemetry t;
  for (const NodeState& state : nodes_) {
    if (!state.up) continue;
    const server::IngestTelemetry q = state.server->ingest_telemetry();
    t.spans += q.spans;
    t.batches += q.batches;
    t.batched_spans += q.batched_spans;
    t.max_batch_spans = std::max(t.max_batch_spans, q.max_batch_spans);
    t.duplicate_spans += q.duplicate_spans;
    t.spans_per_sec += q.spans_per_sec;
    for (const size_t rows : q.shard_rows) t.shard_rows.push_back(rows);
  }
  t.agent_drain_batches = agent_drain_batches_;
  t.agent_drain_records = agent_drain_records_;
  t.agent_staging_waits = agent_staging_waits_;
  t.agent_perf_lost = agent_perf_lost_;
  t.agent_perf_lost_per_cpu = agent_perf_lost_per_cpu_;
  t.agent_enter_map_drops = agent_enter_map_drops_;
  return t;
}

FederationTelemetry Federation::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  FederationTelemetry t;
  t.nodes = nodes_.size();
  for (const NodeState& state : nodes_) {
    t.nodes_up += state.up ? 1 : 0;
    t.nodes_alive += (state.up && !state.suspected) ? 1 : 0;
  }
  t.partitions = partitions_.size();
  t.batches_delivered = batches_delivered_;
  t.spans_delivered = spans_delivered_;
  t.replica_spans = replica_spans_;
  t.rejected_down = rejected_down_;
  t.rejected_partitioned = rejected_partitioned_;
  t.heartbeats = heartbeats_;
  t.heartbeats_lost = heartbeats_lost_;
  t.crash_faults = crash_faults_;
  t.kills = kills_;
  t.restarts = restarts_;
  t.failovers = failovers_;
  t.rejoins = rejoins_;
  t.catch_up_spans = catch_up_spans_;
  t.recovered_spans = recovered_spans_;
  t.stragglers_routed = stragglers_routed_;
  t.stragglers_dropped = stragglers_dropped_;
  t.flows_routed = flows_routed_;
  t.flows_unattributed = flows_unattributed_;
  t.spans_unattributed = spans_unattributed_;
  t.routing_epoch = epoch_;
  t.ticks = ticks_;
  return t;
}

std::string Federation::prometheus_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  metrics::PrometheusWriter writer;
  const Plan plan = build_plan_locked();
  metrics::write_aggregator(writer, *merged_aggregator_locked(plan));

  FederationTelemetry t;  // inline snapshot (telemetry() would deadlock)
  t.nodes = nodes_.size();
  for (const NodeState& state : nodes_) {
    t.nodes_up += state.up ? 1 : 0;
    t.nodes_alive += (state.up && !state.suspected) ? 1 : 0;
  }
  const std::pair<const char*, u64> gauges[] = {
      {"deepflow_federation_nodes", t.nodes},
      {"deepflow_federation_nodes_up", t.nodes_up},
      {"deepflow_federation_nodes_alive", t.nodes_alive},
      {"deepflow_federation_partitions", partitions_.size()},
      {"deepflow_federation_partitions_primary", plan.primary},
      {"deepflow_federation_partitions_failover", plan.failover},
      {"deepflow_federation_partitions_unavailable", plan.unavailable},
      {"deepflow_federation_batches_delivered", batches_delivered_},
      {"deepflow_federation_spans_delivered", spans_delivered_},
      {"deepflow_federation_replica_spans", replica_spans_},
      {"deepflow_federation_rejected_down", rejected_down_},
      {"deepflow_federation_rejected_partitioned", rejected_partitioned_},
      {"deepflow_federation_heartbeats", heartbeats_},
      {"deepflow_federation_heartbeats_lost", heartbeats_lost_},
      {"deepflow_federation_crash_faults", crash_faults_},
      {"deepflow_federation_kills", kills_},
      {"deepflow_federation_restarts", restarts_},
      {"deepflow_federation_failovers", failovers_},
      {"deepflow_federation_rejoins", rejoins_},
      {"deepflow_federation_catch_up_spans", catch_up_spans_},
      {"deepflow_federation_recovered_spans", recovered_spans_},
      {"deepflow_federation_stragglers_routed", stragglers_routed_},
      {"deepflow_federation_stragglers_dropped", stragglers_dropped_},
      {"deepflow_federation_flows_routed", flows_routed_},
      {"deepflow_federation_flows_unattributed", flows_unattributed_},
      {"deepflow_federation_spans_unattributed", spans_unattributed_},
      {"deepflow_federation_routing_epoch", epoch_},
      {"deepflow_federation_ticks", ticks_},
  };
  for (const auto& [name, value] : gauges) {
    writer.family(name, "gauge", "Federation cluster-plane telemetry.");
    writer.sample(name, {}, value);
  }
  return writer.str();
}

}  // namespace deepflow::cluster
