#include "cluster/hash_ring.h"

#include <algorithm>

#include "common/hash.h"

namespace deepflow::cluster {

HashRing::HashRing(u32 nodes, u32 virtual_nodes, u64 seed)
    : nodes_(nodes > 0 ? nodes : 1) {
  const u32 vnodes = virtual_nodes > 0 ? virtual_nodes : 1;
  points_.reserve(static_cast<size_t>(nodes_) * vnodes);
  for (u32 node = 0; node < nodes_; ++node) {
    for (u32 replica = 0; replica < vnodes; ++replica) {
      // mix64 over combined (seed, node, replica): point positions are a
      // pure function of the triple, so every ring with the same seed
      // places node k's points identically regardless of cluster size.
      const u64 position =
          mix64(hash_combine(hash_combine(seed, u64{node} + 1), replica));
      points_.emplace_back(position, node);
    }
  }
  std::sort(points_.begin(), points_.end());
}

u32 HashRing::primary(u64 key_hash) const {
  const u64 position = mix64(key_hash);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), position,
      [](const std::pair<u64, u32>& p, u64 h) { return p.first < h; });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

std::vector<u32> HashRing::owners(u64 key_hash, size_t count) const {
  std::vector<u32> out = walk(key_hash);
  if (out.size() > count) out.resize(count);
  return out;
}

std::vector<u32> HashRing::walk(u64 key_hash) const {
  std::vector<u32> out;
  out.reserve(nodes_);
  std::vector<bool> seen(nodes_, false);
  // Finalize the caller's hash before placing it on the ring: weak hashes
  // (FNV-1a of short strings barely stirs the high bits, and ring order IS
  // the high bits) would otherwise cluster related keys into one arc.
  const u64 position = mix64(key_hash);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), position,
      [](const std::pair<u64, u32>& p, u64 h) { return p.first < h; });
  for (size_t step = 0; step < points_.size() && out.size() < nodes_; ++step) {
    if (it == points_.end()) it = points_.begin();
    if (!seen[it->second]) {
      seen[it->second] = true;
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

}  // namespace deepflow::cluster
