// Quickstart: deploy DeepFlow on a small microservice cluster with zero
// changes to the application, send some traffic, and print an assembled
// distributed trace — client, network hops, and server spans included.
#include <cstdio>

#include "core/deployment.h"
#include "server/trace_analysis.h"
#include "workloads/topologies.h"

using namespace deepflow;

int main() {
  // 1. A three-node cluster running the Spring Boot demo app. The app was
  //    built with no tracing SDK, no code changes, no special headers.
  workloads::Topology topo = workloads::make_spring_boot_demo();

  // 2. Deploy DeepFlow: one agent per node plus the cluster-level server.
  core::Deployment deepflow(topo.cluster.get());
  if (!deepflow.deploy()) {
    std::fprintf(stderr, "deploy failed: %s\n", deepflow.error().c_str());
    return 1;
  }
  std::printf("deployed %zu agents, zero application changes\n",
              deepflow.agent_count());

  // 3. Drive 200 requests/s for two simulated seconds.
  workloads::LoadResult load =
      topo.app->run_constant_load(topo.entry, 200.0, 2 * kSecond);
  std::printf("load: offered=%.0f rps achieved=%.0f rps, latency %s\n",
              load.offered_rps, load.achieved_rps,
              load.latency.summary().c_str());

  // 4. Collect spans and query.
  deepflow.finish();
  const agent::AgentStats stats = deepflow.aggregate_stats();
  std::printf("agents: %llu syscall records, %llu packet records, "
              "%llu spans emitted\n",
              (unsigned long long)stats.syscall_records,
              (unsigned long long)stats.packet_records,
              (unsigned long long)stats.spans_emitted);

  // 5. Pick one gateway-side span and assemble its full trace.
  const auto starts = deepflow.server().find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/" && s.protocol == protocols::L7Protocol::kHttp1;
  });
  if (starts.empty()) {
    std::fprintf(stderr, "no candidate spans found\n");
    return 1;
  }
  const server::AssembledTrace trace =
      deepflow.server().query_trace(starts.front());
  std::printf("\nassembled trace: %zu spans (search iterations: %u)\n\n%s\n",
              trace.spans.size(), trace.iterations_used,
              trace.render().c_str());

  // 6. Tag-based correlation: resource tags decoded from smart encoding.
  if (!trace.spans.empty()) {
    const agent::Span& first = trace.spans.front().span;
    std::printf("tags on first span (%zu):\n", first.tags.size());
    for (const agent::Tag& tag : first.tags) {
      std::printf("  %-24s = %s\n", tag.key.c_str(), tag.value.c_str());
    }
  }

  // 7. Where did the time go? Latency decomposition over the same trace.
  const server::TraceAnalysis analysis = server::analyze(trace);
  std::printf("\nlatency decomposition:\n%s", analysis.render().c_str());
  return 0;
}
