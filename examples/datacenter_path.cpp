// Appendix A — requests traveling through a data center: end-hosts to
// gateways. With agents on the end hosts, traces extend beyond application
// processes to pods, nodes and physical machines; because L2/3/4
// forwarding never rewrites the TCP sequence, even an L4 gateway spliced
// into the path joins the trace.
#include <cstdio>
#include <map>

#include "core/deployment.h"
#include "workloads/topologies.h"

using namespace deepflow;

int main() {
  netsim::Cluster cluster(/*seed=*/41);
  cluster.add_node("node-1");
  cluster.add_node("node-2");
  workloads::App app(&cluster, 41);

  workloads::ServiceSpec backend;
  backend.name = "backend";
  backend.compute_ns = 600 * kMicrosecond;
  backend.threads = 8;
  const size_t backend_id = app.add_service(backend);

  workloads::ServiceSpec frontend;
  frontend.name = "frontend";
  frontend.is_proxy = true;
  frontend.compute_ns = 200 * kMicrosecond;
  frontend.threads = 8;
  frontend.calls = {{backend_id, "/api"}};
  const size_t frontend_id = app.add_service(frontend);
  app.build();

  // Splice an L4 server load balancer into a fresh frontend->backend
  // connection; its traffic is mirrored to a DeepFlow capture point
  // (top-of-rack mirroring in the paper).
  netsim::Device* slb = cluster.fabric().create_device(
      netsim::DeviceKind::kL4Gateway, "slb-1", 0, 12'000);
  const netsim::ConnectionHandle via_gateway = cluster.connect(
      app.instance(frontend_id, 0)->pod(), app.instance(backend_id, 0)->pod(),
      9000, false, {slb});
  app.instance(backend_id, 0)->accept_connection(via_gateway);
  app.instance(frontend_id, 0)
      ->add_link(0, protocols::L7Protocol::kHttp1,
                 protocols::SessionMatchMode::kPipeline, "/api",
                 {via_gateway});

  core::Deployment deepflow(&cluster);
  if (!deepflow.deploy()) return 1;
  const workloads::LoadResult load =
      app.run_constant_load(frontend_id, 50.0, 2 * kSecond);
  deepflow.finish();
  std::printf("%llu requests traced end to end\n\n",
              (unsigned long long)load.completed);

  // Assemble one trace and show the full path: client process -> veth ->
  // vswitch -> pNIC -> (gateway) -> ToR -> ... -> server process.
  const auto& server = deepflow.server();
  const auto starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  if (starts.empty()) return 1;
  const server::AssembledTrace trace = server.query_trace(starts.front());
  std::printf("full data-center path (one request):\n%s\n",
              trace.render().c_str());

  // Coverage census: which device kinds appear in traces.
  std::map<std::string, int> coverage;
  for (const u64 id : server.find_spans([](const agent::Span& s) {
         return s.kind == agent::SpanKind::kNetwork;
       })) {
    const agent::Span& s = server.store().row(id)->span;
    const size_t slash = s.device_name.find('/');
    coverage[slash == std::string::npos ? s.device_name
                                        : s.device_name.substr(slash + 1)]++;
  }
  std::printf("network span coverage by device type:\n");
  for (const auto& [device, count] : coverage) {
    std::printf("  %-12s %d spans\n", device.c_str(), count);
  }
  const bool gateway_covered = coverage.count("slb-1") > 0;
  std::printf("\nL4 gateway in traces: %s (TCP sequence preserved across"
              " forwarding)\n",
              gateway_covered ? "YES" : "NO");
  return gateway_covered ? 0 : 1;
}
