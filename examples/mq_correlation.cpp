// §4.1.3 — cooperative debugging with network metrics and traces.
//
// An online service sees latency spikes and connection terminations.
// Application-level tracing alone showed "which spans got slower" after six
// hours of digging; DeepFlow's tag-based correlation links the slow spans
// to their flows' TCP metrics and finds the RabbitMQ queue backlog causing
// connection resets in about a minute.
#include <cstdio>

#include "core/deployment.h"
#include "workloads/topologies.h"

using namespace deepflow;

int main() {
  workloads::Topology topo = workloads::make_mq_pipeline();
  // The incident: the broker falls behind (queue backlog) and its uplink
  // starts resetting connections under pressure.
  topo.app->instance(topo.services.at("rabbitmq"), 0)->set_slowdown(40.0);
  topo.app->instance(topo.services.at("rabbitmq"), 0)
      ->pod()
      .veth->fault.reset_probability = 0.02;

  core::Deployment deepflow(topo.cluster.get());
  if (!deepflow.deploy()) return 1;
  const workloads::LoadResult load =
      topo.app->run_constant_load(topo.entry, 60.0, 2 * kSecond);
  deepflow.finish();
  std::printf("symptom: latency %s, %llu failed requests\n\n",
              load.latency.summary().c_str(),
              (unsigned long long)load.failed);

  const auto& server = deepflow.server();

  // Step 1: the trace view — per-protocol span latency immediately ranks
  // the broker leg as the outlier.
  struct LegStat {
    const char* name;
    u16 server_port;  // 8000 + service index distinguishes the legs
    DurationNs total = 0;
    size_t count = 0;
  };
  const auto port_of = [&topo](const char* service) {
    return static_cast<u16>(8000 + topo.services.at(service));
  };
  LegStat legs[] = {{"orders (http)", port_of("orders")},
                    {"rabbitmq (mqtt)", port_of("rabbitmq")},
                    {"worker (http)", port_of("worker")},
                    {"analytics (kafka)", port_of("analytics")}};
  for (LegStat& leg : legs) {
    for (const u64 id : server.find_spans([&leg](const agent::Span& s) {
           return s.tuple.dst_port == leg.server_port && s.from_server_side &&
                  s.kind == agent::SpanKind::kSystem;
         })) {
      leg.total += server.store().row(id)->span.duration();
      ++leg.count;
    }
  }
  std::printf("step 1: mean server-side span duration per leg:\n");
  for (const LegStat& leg : legs) {
    std::printf("  %-20s %8.1f us  (%zu spans)\n", leg.name,
                leg.count ? static_cast<double>(leg.total) /
                                static_cast<double>(leg.count) / 1e3
                          : 0.0,
                leg.count);
  }

  // Step 2: metric-by-metric analysis of the slow leg's flows — the
  // correlation step other tracers cannot do. The broker flows show TCP
  // resets; the healthy legs show none.
  std::printf("\nstep 2: TCP metrics on each leg's flows:\n");
  u64 mq_resets = 0, other_resets = 0;
  for (const LegStat& leg : legs) {
    u64 resets = 0, retrans = 0;
    for (const u64 id : server.find_spans([&leg](const agent::Span& s) {
           return s.tuple.dst_port == leg.server_port && s.from_server_side &&
                  s.kind == agent::SpanKind::kSystem;
         })) {
      const auto* metrics =
          server.metrics_for(server.store().row(id)->span);
      if (metrics != nullptr) {
        resets = std::max(resets, metrics->resets);
        retrans = std::max(retrans, metrics->retransmissions);
      }
    }
    std::printf("  %-20s resets=%llu retransmissions=%llu\n", leg.name,
                (unsigned long long)resets, (unsigned long long)retrans);
    if (leg.server_port == port_of("rabbitmq") ||
        leg.server_port == port_of("worker")) {
      // Both flows traverse the broker pod's network interface — the
      // fault domain the resets cluster on.
      mq_resets += resets;
    } else {
      other_resets += resets;
    }
  }

  const bool located = mq_resets > 0 && other_resets == 0;
  std::printf("\nroot cause: RabbitMQ queue backlog -> TCP connection resets"
              " -> %s\n",
              located ? "LOCATED (resets cluster on flows through the"
                        " broker pod; client and kafka legs are clean)"
                      : "MISMATCH");
  return located ? 0 : 1;
}
