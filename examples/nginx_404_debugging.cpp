// §4.1.1 — performance debugging during execution.
//
// A client reports timeouts/errors on one endpoint. The operators spent a
// day with conventional tools because the invocation path was full of blind
// spots. With DeepFlow they deploy on the live system — zero code changes —
// and the traces point at one pod of the Nginx Ingress replica set
// returning 404 within minutes.
#include <cstdio>
#include <map>
#include <set>

#include "core/deployment.h"
#include "workloads/topologies.h"

using namespace deepflow;

int main() {
  // Production system already running; replica 1 of the ingress is broken.
  workloads::Topology topo = workloads::make_nginx_ingress_case(
      /*faulty_replica=*/1);

  // Deploy DeepFlow ON THE FLY — the services keep serving.
  core::Deployment deepflow(topo.cluster.get());
  if (!deepflow.deploy()) {
    std::fprintf(stderr, "deploy failed: %s\n", deepflow.error().c_str());
    return 1;
  }
  std::printf("DeepFlow deployed on the live cluster (no restarts).\n");

  // The user traffic that exhibits the failures.
  const workloads::LoadResult load =
      topo.app->run_constant_load(topo.entry, 120.0, 2 * kSecond,
                                  /*connections=*/6);
  deepflow.finish();
  std::printf("observed %llu requests; users report intermittent errors\n\n",
              (unsigned long long)load.completed);

  // Step 1: filter spans by error status — the front-end "red spans" view.
  const auto& server = deepflow.server();
  const auto errors = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && s.from_server_side &&
           !s.ok && s.status_code == 404;
  });
  std::printf("step 1: %zu error spans (HTTP 404) found\n", errors.size());
  if (errors.empty()) return 1;

  // Step 2: resource tags (smart-encoding expanded at query time) name the
  // pod directly — no manual correlation with deployment manifests.
  std::map<std::string, int> by_pod;
  for (const u64 id : errors) {
    const agent::Span span = server.store().materialize(id);
    for (const agent::Tag& tag : span.tags) {
      if (tag.key == "server.pod") ++by_pod[tag.value];
    }
  }
  std::printf("step 2: 404s by pod:\n");
  for (const auto& [pod, count] : by_pod) {
    std::printf("  %-24s %d\n", pod.c_str(), count);
  }

  // Step 3: one trace shows the shape — the faulty pod answers 404 while
  // its siblings proxy to web/api/db successfully.
  const server::AssembledTrace bad_trace = server.query_trace(errors.front());
  std::printf("\nstep 3: one failing trace:\n%s\n",
              bad_trace.render().c_str());

  const bool located = by_pod.size() == 1 &&
                       by_pod.begin()->first == "nginx-ingress-1";
  std::printf("root cause: pod %s returns 404 -> %s\n",
              by_pod.begin()->first.c_str(),
              located ? "LOCATED (matches planted fault)" : "MISMATCH");
  return located ? 0 : 1;
}
