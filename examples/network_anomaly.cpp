// §4.1.2 — accurate diagnosis of network infrastructure anomalies.
//
// Newly installed pods intermittently cannot reach the gateway; operators
// chased an extra ARP request for months without finding its source.
// DeepFlow's network coverage lets them walk the traces hop by hop and
// compare ARP behaviour at every device: the storm comes from one
// defective physical NIC.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/deployment.h"
#include "workloads/topologies.h"

using namespace deepflow;

int main() {
  workloads::Topology topo = workloads::make_ecommerce();
  // The planted defect: node-2's physical NIC storms ARP on new flows and
  // adds latency while the neighbour table churns.
  netsim::Device* bad_nic = topo.cluster->pnic_of(topo.cluster->nodes()[1]);
  bad_nic->fault.arp_anomaly = true;
  bad_nic->fault.extra_latency_ns = 8 * kMillisecond;

  core::Deployment deepflow(topo.cluster.get());
  if (!deepflow.deploy()) return 1;
  topo.app->run_constant_load(topo.entry, 60.0, 2 * kSecond);
  deepflow.finish();

  const auto& server = deepflow.server();

  // Step 1: traces show the slow hop. Pick a slow trace and render it —
  // the gap sits between two specific devices.
  const auto slow = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.duration() > 10 * kMillisecond;
  });
  std::printf("step 1: %zu slow client spans (>10ms)\n", slow.size());
  if (!slow.empty()) {
    const auto trace = server.query_trace(slow.front());
    std::printf("\none slow trace (watch the hop timings):\n%s\n",
                trace.render().c_str());
  }

  // Step 2: rule out containers/VMs/vswitches, device by device — exactly
  // the elimination the paper describes — using per-device ARP counters.
  struct DeviceArp {
    std::string name;
    double arp_per_packet;
  };
  std::vector<DeviceArp> ranked;
  for (const auto& device : topo.cluster->fabric().devices()) {
    const netsim::DeviceMetrics* m = server.device_metrics(device->name);
    if (m == nullptr || m->packets == 0) continue;
    ranked.push_back({device->name, static_cast<double>(m->arp_requests) /
                                        static_cast<double>(m->packets)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const DeviceArp& a, const DeviceArp& b) {
              return a.arp_per_packet > b.arp_per_packet;
            });
  std::printf("step 2: ARP requests per forwarded packet, by device:\n");
  for (const DeviceArp& d : ranked) {
    std::printf("  %-24s %.4f\n", d.name.c_str(), d.arp_per_packet);
  }

  const bool located = !ranked.empty() && ranked.front().name == bad_nic->name;
  std::printf("\nroot cause: %s -> %s\n",
              ranked.empty() ? "?" : ranked.front().name.c_str(),
              located ? "LOCATED (the defective physical NIC)" : "MISMATCH");
  return located ? 0 : 1;
}
