// Service map: the universal, RED-annotated call graph DeepFlow derives
// from the same zero-code hook data as the traces. No SDK emitted these
// metrics — every spanned session doubles as a metric sample, so the map
// covers every service and every observed call edge, with request/error
// rates, latency percentiles, and network counters per edge.
#include <cstdio>

#include "core/deployment.h"
#include "metrics/exposition.h"
#include "workloads/topologies.h"

using namespace deepflow;

int main() {
  // 1. The bookinfo fan-out app: a gateway fanning out to product page,
  //    reviews/details backends, and their datastores. Built with no
  //    tracing SDK and no metrics SDK.
  workloads::Topology topo = workloads::make_bookinfo();

  core::Deployment deepflow(topo.cluster.get());
  if (!deepflow.deploy()) {
    std::fprintf(stderr, "deploy failed: %s\n", deepflow.error().c_str());
    return 1;
  }
  std::printf("deployed %zu agents, zero application changes\n",
              deepflow.agent_count());

  // 2. Drive 150 requests/s for three simulated seconds, then drain.
  topo.app->run_constant_load(topo.entry, 150.0, 3 * kSecond);
  deepflow.finish();

  // 3. The service map falls out of ingest — no extra pass over the store.
  const metrics::ServiceMap map = deepflow.server().service_map();
  std::printf("\n%s", map.render().c_str());

  // 4. Per-service time series are queryable at multiple resolutions.
  if (!map.nodes.empty()) {
    const std::string& svc = map.nodes.front().name;
    const metrics::MetricsSeries series = deepflow.server().query_metrics(
        svc, 0, ~TimestampNs{0}, kSecond);
    std::printf("\n1s series for '%s' (%zu buckets):\n", svc.c_str(),
                series.buckets.size());
    for (const metrics::MetricsBucket& bucket : series.buckets) {
      std::printf("  t=%llus req=%llu err=%llu mean=%.2fms\n",
                  (unsigned long long)(bucket.bucket_start / kSecond),
                  (unsigned long long)bucket.requests,
                  (unsigned long long)bucket.errors,
                  bucket.requests
                      ? static_cast<double>(bucket.duration_sum) /
                            static_cast<double>(bucket.requests) / kMillisecond
                      : 0.0);
    }
  }

  // 5. Prometheus-style exposition of the same data (first lines).
  const std::string text = deepflow.server().prometheus_metrics();
  std::printf("\nprometheus exposition (first 12 lines):\n");
  size_t pos = 0;
  for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
    const size_t end = text.find('\n', pos);
    std::printf("  %s\n", text.substr(pos, end - pos).c_str());
    pos = end == std::string::npos ? end : end + 1;
  }

  // 6. Aggregator self-telemetry: how the spans were folded.
  const metrics::MetricsTelemetry t =
      deepflow.server().metrics_aggregator().telemetry();
  std::printf("\nfolded %llu spans into %llu services / %llu edges "
              "(%llu flow records attributed, %llu unattributed)\n",
              (unsigned long long)t.spans_seen, (unsigned long long)t.services,
              (unsigned long long)t.edges, (unsigned long long)t.flows_folded,
              (unsigned long long)t.flows_unattributed);
  return 0;
}
