// Federation bench: completeness and query latency across cluster sizes
// and a kill-a-server chaos schedule.
//
// Each cell runs the spring_boot_demo workload through a Deployment —
// single-server, or federated behind the consistent-hash ring — with the
// batched SpanTransport, and measures:
//   * completeness — spans the query plane serves / spans the single-server
//     baseline serves (1.0 = byte-identical content, the Federation
//     equivalence contract);
//   * pipeline seconds — wall clock for load + finalize (replication and
//     anti-entropy ride the ingest path, so fan-out cost shows up here);
//   * query ms — wall clock to serve the full span list and assemble every
//     trace through the scatter-gather query plane;
//   * recovery work — failovers, catch-up spans replayed on rejoin, and
//     deliveries refused while the victim was down.
//
// The chaos rows kill the primary owner of the first partition between the
// two load phases; the rejoin row restarts it before finalize, and its
// completeness must return to 1.0 (catch-up + anti-entropy). The kill row
// leaves it dead: with one replica content survives, with none it degrades.
// Usage:
//   bench_federation [--json out.json] [--quick]
#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/federation.h"
#include "core/deployment.h"
#include "server/canonical.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

enum class Chaos { kSteady, kKill, kKillRejoin };

struct CellResult {
  std::string label;
  double pipeline_seconds = 0;
  double query_ms = 0;
  u64 served = 0;    // spans the query plane returned
  u64 traces = 0;    // traces assembled from them
  cluster::FederationTelemetry fed;
};

const char* chaos_name(Chaos chaos) {
  switch (chaos) {
    case Chaos::kSteady: return "steady";
    case Chaos::kKill: return "kill";
    case Chaos::kKillRejoin: return "rejoin";
  }
  return "?";
}

CellResult run_cell(u32 nodes, u32 replicas, Chaos chaos, double rps) {
  workloads::Topology topo = workloads::make_spring_boot_demo(11);
  core::DeploymentConfig config;
  config.transport.direct = false;
  config.transport.batch_spans = 16;
  config.federation.nodes = nodes;
  config.federation.replicas = replicas;
  core::Deployment deepflow(topo.cluster.get(), config);
  if (!deepflow.deploy()) {
    std::fprintf(stderr, "deploy failed: %s\n", deepflow.error().c_str());
    return {};
  }

  CellResult cell;
  if (nodes == 0) {
    cell.label = "single";
  } else {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "fed_n%u_r%u_%s", nodes, replicas,
                  chaos_name(chaos));
    cell.label = buf;
  }

  // Two half-length load phases with a drain poll between them, the same
  // shape for every cell so the workload stream is identical run to run;
  // the chaos cells kill the first partition's primary at the midpoint.
  const bench::WallTimer pipeline_timer;
  u32 victim = 0;
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond / 2);
  deepflow.poll();
  if (chaos != Chaos::kSteady && deepflow.federated()) {
    const std::string host =
        topo.cluster->kernel_of(topo.cluster->nodes().front())->hostname();
    victim = deepflow.federation()->owners_of(host).front();
    deepflow.federation()->kill(victim);
  }
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond / 2);
  deepflow.poll();
  if (chaos == Chaos::kKillRejoin && deepflow.federated()) {
    deepflow.federation()->restart(victim);
  }
  deepflow.finish();
  cell.pipeline_seconds = pipeline_timer.elapsed_seconds();

  // Query latency: serve the full span list, then assemble every trace
  // through the scatter-gather path (claimed-set dedup, as a UI would).
  const bench::WallTimer query_timer;
  std::vector<u64> ids;
  if (deepflow.federated()) {
    cluster::Federation& fed = *deepflow.federation();
    for (const agent::Span& span : fed.query_span_list(0, ~TimestampNs{0})) {
      ids.push_back(span.span_id);
    }
    std::set<u64> claimed;
    for (const u64 id : ids) {
      if (claimed.contains(id)) continue;
      const server::AssembledTrace trace = fed.query_trace(id);
      for (const auto& s : trace.spans) claimed.insert(s.span.span_id);
      ++cell.traces;
    }
    cell.fed = fed.telemetry();
  } else {
    const server::DeepFlowServer& server = deepflow.server();
    ids = server.store().span_list(0, ~TimestampNs{0});
    std::set<u64> claimed;
    for (const u64 id : ids) {
      if (claimed.contains(id)) continue;
      const server::AssembledTrace trace = server.query_trace(id);
      for (const auto& s : trace.spans) claimed.insert(s.span.span_id);
      ++cell.traces;
    }
  }
  cell.query_ms = query_timer.elapsed_seconds() * 1e3;
  cell.served = ids.size();
  return cell;
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const double rps = args.quick ? 8.0 : 30.0;

  bench::print_header(
      "Federation: completeness & query latency vs cluster size and chaos");
  std::printf("  %-16s %8s %10s %10s %9s %9s %9s %9s\n", "cell", "served",
              "complete", "query-ms", "failover", "catchup", "refused",
              "kills");

  struct Cell {
    u32 nodes;
    u32 replicas;
    Chaos chaos;
  };
  const std::vector<Cell> cells = {
      {0, 0, Chaos::kSteady},                     // single-server baseline
      {2, 1, Chaos::kSteady},  {3, 1, Chaos::kSteady},
      {5, 1, Chaos::kSteady},  {3, 1, Chaos::kKill},
      {3, 0, Chaos::kKill},    {3, 1, Chaos::kKillRejoin},
  };

  bench::JsonReport report(args.json_path);
  double baseline_served = 0;
  int failures = 0;
  for (const Cell& spec : cells) {
    const CellResult cell =
        run_cell(spec.nodes, spec.replicas, spec.chaos, rps);
    if (baseline_served == 0 && spec.nodes == 0) {
      baseline_served = static_cast<double>(cell.served);
    }
    const double completeness =
        baseline_served > 0 ? static_cast<double>(cell.served) / baseline_served
                            : 0.0;
    std::printf("  %-16s %8" PRIu64 " %10.4f %10.3f %9" PRIu64 " %9" PRIu64
                " %9" PRIu64 " %9" PRIu64 "\n",
                cell.label.c_str(), cell.served, completeness, cell.query_ms,
                cell.fed.failovers, cell.fed.catch_up_spans,
                cell.fed.rejected_down, cell.fed.kills);
    report.add(cell.label + "_completeness", completeness);
    report.add(cell.label + "_served", static_cast<double>(cell.served));
    report.add(cell.label + "_query_ms", cell.query_ms);
    report.add(cell.label + "_pipeline_seconds", cell.pipeline_seconds);

    // Contract checks the sanitizer smokes gate on: every steady or rejoined
    // replicated cell serves exactly the baseline content; the unreplicated
    // kill cell must degrade, not vanish.
    const bool replicated_whole =
        spec.nodes == 0 ||
        (spec.replicas >= 1 && cell.served == baseline_served &&
         (spec.chaos == Chaos::kSteady || spec.chaos == Chaos::kKillRejoin));
    const bool degraded_kill =
        spec.nodes > 0 &&
        ((spec.chaos == Chaos::kKill && spec.replicas >= 1 &&
          cell.served == baseline_served) ||
         (spec.chaos == Chaos::kKill && spec.replicas == 0 &&
          cell.served > 0 && cell.served < baseline_served));
    if (!replicated_whole && !degraded_kill) {
      std::fprintf(stderr, "FAIL: %s served %" PRIu64 " vs baseline %.0f\n",
                   cell.label.c_str(), cell.served, baseline_served);
      ++failures;
    }
  }
  if (failures > 0) return 1;
  return report.write() ? 0 : 1;
}
