// Fig 14 — trace storage resource consumption under the three tag-encoding
// strategies: direct string storage, per-column dictionary
// ("low-cardinality"), and DeepFlow's smart-encoding.
//
// The paper inserts 10^7 synthetic traces; this harness scales to 10^6 rows
// (laptop-scale) and reports, per strategy: ingest CPU time, storage bytes
// (row blobs = "disk"), auxiliary memory (dictionaries), and the ratios
// normalized to smart-encoding — the paper's headline numbers are
// direct = 4.31x CPU / 1.97x memory / 3.9x disk and
// low-cardinality = 7.79x CPU / 2.14x memory / 1.94x disk.
#include <cinttypes>

#include "bench/bench_util.h"
#include "server/span_store.h"

namespace deepflow {
namespace {

constexpr size_t kRows = 1'000'000;

struct Measurement {
  std::string name;
  double cpu_seconds = 0;
  u64 disk_bytes = 0;   // row blobs
  u64 memory_bytes = 0; // encoder auxiliary state + row blobs resident
};

Measurement run_encoder(server::EncoderKind kind,
                        const bench::SyntheticCluster& cluster) {
  server::SpanStore store(kind, &cluster.registry);
  Rng rng(20230910);
  Measurement m;
  {
    const bench::WallTimer timer;
    for (size_t i = 0; i < kRows; ++i) {
      store.insert(bench::make_synthetic_span(i + 1, rng, cluster));
    }
    m.cpu_seconds = timer.elapsed_seconds();
  }
  m.name = std::string(store.encoder_name());
  m.disk_bytes = store.blob_bytes();
  m.memory_bytes = store.blob_bytes() + store.encoder_aux_bytes();
  return m;
}

}  // namespace
}  // namespace deepflow

int main() {
  using namespace deepflow;
  bench::print_header(
      "Fig 14 — trace storage resource consumption (1e6 synthetic spans,\n"
      "~20 tags per span across 16 nodes x 16 pods with 8 labels each)");
  const bench::SyntheticCluster cluster =
      bench::make_synthetic_cluster(16, 16, 8);

  const Measurement smart = run_encoder(server::EncoderKind::kSmart, cluster);
  const Measurement low_card =
      run_encoder(server::EncoderKind::kLowCardinality, cluster);
  const Measurement direct = run_encoder(server::EncoderKind::kDirect, cluster);

  std::printf("\n  %-16s %12s %14s %14s\n", "encoder", "cpu-seconds",
              "disk-bytes", "memory-bytes");
  for (const Measurement& m : {smart, low_card, direct}) {
    std::printf("  %-16s %12.3f %14" PRIu64 " %14" PRIu64 "\n", m.name.c_str(),
                m.cpu_seconds, m.disk_bytes, m.memory_bytes);
  }

  std::printf("\n  ratios vs smart-encoding (paper: direct 4.31x/1.97x/3.9x,"
              " low-card 7.79x/2.14x/1.94x):\n");
  std::printf("  %-16s %10s %10s %10s\n", "encoder", "cpu", "memory", "disk");
  for (const Measurement& m : {low_card, direct}) {
    std::printf("  %-16s %9.2fx %9.2fx %9.2fx\n", m.name.c_str(),
                m.cpu_seconds / smart.cpu_seconds,
                static_cast<double>(m.memory_bytes) /
                    static_cast<double>(smart.memory_bytes),
                static_cast<double>(m.disk_bytes) /
                    static_cast<double>(smart.disk_bytes));
  }
  std::printf("\n");
  return 0;
}
