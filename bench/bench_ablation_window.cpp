// Ablation — session-aggregation time-window duration (§3.3.1).
//
// DeepFlow's production slot is 60 s: request/response pairing only
// consults the same slot and its neighbours, so responses delayed past the
// retained horizon (e.g. by retransmission timeouts) surface as incomplete
// sessions. This sweep injects 30% packet loss with a 2 s RTO on one
// vswitch and measures how session completeness depends on slot duration.
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  bench::print_header(
      "Ablation — aggregation slot duration vs session completeness\n"
      "(30% loss / 2 s RTO on one vswitch; paper default slot: 60 s)");
  std::printf("  %12s %12s %10s %10s %12s\n", "slot", "agent-match",
              "expired", "complete%", "server-rescue");

  const DurationNs load_duration = args.quick ? 2 * kSecond : 10 * kSecond;
  const std::vector<DurationNs> slots =
      args.quick ? std::vector<DurationNs>{1 * kSecond, 60 * kSecond}
                 : std::vector<DurationNs>{500 * kMillisecond, 1 * kSecond,
                                           2 * kSecond, 5 * kSecond,
                                           60 * kSecond, 300 * kSecond};
  for (const DurationNs slot : slots) {
    u64 local_matched = 0, local_expired = 0, rescued = 0;
    for (const bool forward : {false, true}) {
      workloads::Topology topo = workloads::make_spring_boot_demo();
      netsim::Device* lossy =
          topo.cluster->vswitch_of(topo.cluster->nodes()[1]);
      lossy->fault.drop_probability = 0.30;
      lossy->fault.retransmit_timeout_ns = 2 * kSecond;

      core::DeploymentConfig config;
      config.agent.session.slot_ns = slot;
      config.forward_stragglers = forward;
      core::Deployment deepflow(topo.cluster.get(), config);
      if (!deepflow.deploy()) return 1;
      topo.app->run_constant_load(topo.entry, 40.0, load_duration);
      deepflow.finish();

      const agent::AgentStats stats = deepflow.aggregate_stats();
      if (forward) {
        rescued = deepflow.server().reaggregated_sessions();
      } else {
        local_matched = stats.matched_sessions;
        local_expired = stats.expired_requests;
      }
    }
    const double total = static_cast<double>(local_matched + local_expired);
    std::printf("  %10llums %12llu %10llu %9.1f%% %12llu\n",
                (unsigned long long)(slot / kMillisecond),
                (unsigned long long)local_matched,
                (unsigned long long)local_expired,
                total > 0 ? 100.0 * local_matched / total : 0.0,
                (unsigned long long)rescued);
    const std::string prefix =
        "window_" + std::to_string(slot / kMillisecond) + "ms_";
    report.add(prefix + "complete_pct",
               total > 0 ? 100.0 * static_cast<double>(local_matched) / total
                         : 0.0);
    report.add(prefix + "rescued", static_cast<double>(rescued));
  }
  std::printf(
      "\n  shape: local completeness rises with slot duration and saturates\n"
      "  once the horizon covers the worst-case recovery delay (the paper's\n"
      "  60 s default sits past that knee); with straggler upload enabled\n"
      "  (the paper's server-side re-aggregation) the out-of-window pairs\n"
      "  are recovered server-side regardless of the agent slot.\n\n");
  return report.write() ? 0 : 1;
}
