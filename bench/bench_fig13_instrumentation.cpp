// Fig 13 — per-event instrumentation overhead.
//
// (a) hook-mechanism overhead: empty program, kprobe pair, tracepoint pair.
// (b) per-ABI overhead of DeepFlow's full collection programs (enter-stage +
//     exit-merge + perf submit) and of the SSL uprobe extension path.
//
// Two numbers per row:
//   * model-ns : the latency the simulated kernel charges the traced
//                syscall (calibrated to the paper's testbed measurements);
//   * real-ns  : measured wall-clock cost of executing this repository's
//                actual collection code path per event on this machine.
#include <benchmark/benchmark.h>

#include "agent/collector.h"
#include "protocols/http1.h"
#include "bench/bench_util.h"

namespace deepflow {
namespace {

struct Fixture {
  Fixture() : kernel(loop, "bench-node", nullptr) {
    pid = kernel.tasks().create_process("bench");
    tid = kernel.tasks().create_thread(pid);
    sock = kernel.open_socket(
        pid, FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"), 40000,
                       80, L4Proto::kTcp});
    tls_sock = kernel.open_socket(
        pid, FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"), 40001,
                       443, L4Proto::kTcp},
        L4Proto::kTcp, /*tls=*/true);
  }
  EventLoop loop;
  kernelsim::Kernel kernel;
  Pid pid{};
  Tid tid{};
  SocketId sock{};
  SocketId tls_sock{};
};

const std::string kPayload =
    protocols::build_http1_request("GET", "/bench/item");
// NOLINTNEXTLINE: benchmark fixtures are intentionally static.
Fixture* g_fixture = nullptr;

void BM_UntracedSyscall(benchmark::State& state) {
  Fixture& f = *g_fixture;
  TimestampNs ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.kernel.sys_send(f.tid, f.sock, kPayload,
                          kernelsim::SyscallAbi::kWrite, ts += 10'000));
  }
}
BENCHMARK(BM_UntracedSyscall);

void BM_EmptyBpfProgram(benchmark::State& state) {
  // Theoretical minimum: an attached program that does nothing.
  Fixture f;
  const auto id = f.kernel.hooks().attach_syscall(
      kernelsim::HookType::kKprobe, kernelsim::SyscallAbi::kWrite,
      [](const kernelsim::HookContext&) {});
  TimestampNs ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.kernel.sys_send(f.tid, f.sock, kPayload,
                          kernelsim::SyscallAbi::kWrite, ts += 10'000));
  }
  f.kernel.hooks().detach(id);
}
BENCHMARK(BM_EmptyBpfProgram);

void BM_FullCollectorPath(benchmark::State& state) {
  // DeepFlow's real enter+exit programs: map staging, merge, perf submit.
  Fixture f;
  agent::CollectorConfig config;
  config.perf_ring_capacity = 1 << 20;
  agent::Collector collector(&f.kernel, config);
  collector.deploy_syscall_programs();
  TimestampNs ts = 0;
  size_t produced = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.kernel.sys_send(f.tid, f.sock, kPayload,
                          kernelsim::SyscallAbi::kWrite, ts += 10'000));
    if (++produced % 4096 == 0) {
      collector.syscall_events().drain(1 << 16,
                                       [](ebpf::SyscallEventRecord&&) {});
    }
  }
}
BENCHMARK(BM_FullCollectorPath);

void BM_SslUprobePath(benchmark::State& state) {
  Fixture f;
  agent::CollectorConfig config;
  config.perf_ring_capacity = 1 << 20;
  agent::Collector collector(&f.kernel, config);
  collector.deploy_syscall_programs();
  collector.deploy_ssl_programs();
  TimestampNs ts = 0;
  size_t produced = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.kernel.sys_send(f.tid, f.tls_sock, kPayload,
                          kernelsim::SyscallAbi::kWrite, ts += 10'000));
    if (++produced % 4096 == 0) {
      collector.syscall_events().drain(1 << 16,
                                       [](ebpf::SyscallEventRecord&&) {});
    }
  }
}
BENCHMARK(BM_SslUprobePath);

void print_model_table() {
  using kernelsim::SyscallAbi;
  bench::print_header(
      "Fig 13(a) — modelled per-event hook latency added to a syscall\n"
      "(simulated-kernel charge per mechanism; paper: 277-889 ns per event,\n"
      " <=588 ns added per syscall, uprobe base ~6153 ns)");
  EventLoop loop;
  kernelsim::Kernel kernel(loop, "model", nullptr);
  const kernelsim::KernelConfig& config = kernel.config();
  bench::print_row("kprobe handler (enter or exit)",
                   std::to_string(config.kprobe_overhead_ns) + " ns");
  bench::print_row("tracepoint handler (enter or exit)",
                   std::to_string(config.tracepoint_overhead_ns) + " ns");
  bench::print_row("uprobe/uretprobe crossing",
                   std::to_string(config.uprobe_overhead_ns) + " ns");
  bench::print_row("ssl_read/ssl_write intrinsic cost",
                   std::to_string(config.ssl_base_ns) + " ns");

  bench::print_header(
      "Fig 13(b) — modelled added latency per instrumented ABI\n"
      "(enter+exit pair attached, as DeepFlow deploys it)");
  agent::Collector collector(&kernel);
  collector.deploy_syscall_programs();
  for (const auto& abis : {kernelsim::kIngressAbis, kernelsim::kEgressAbis}) {
    for (const SyscallAbi abi : abis) {
      bench::print_row(std::string(kernelsim::abi_name(abi)),
                       std::to_string(kernel.instrumentation_latency(abi)) +
                           " ns per syscall");
    }
  }
  std::printf(
      "\nReal per-event CPU cost of this implementation's collection path\n"
      "follows (google-benchmark): compare BM_FullCollectorPath against\n"
      "BM_UntracedSyscall to read the added cost per event.\n\n");
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  deepflow::g_fixture = new deepflow::Fixture();
  deepflow::print_model_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
