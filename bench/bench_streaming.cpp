// Streaming-assembly characterization (ISSUE 10): (A) baseline per-span
// ingest throughput with no streaming hook, (B) the two streaming pipeline
// stages measured separately — the grouper's ingest-critical-path overhead
// (the acceptance budget: within 15% of the non-streaming ingest path) and
// window-finalization throughput, the capacity number that sizes the
// finalize_workers pool (finalization overlaps ingest on its own threads,
// so it bounds sustainable load, not per-span latency) — and (C) the
// anomaly-aware tail sampler swept across healthy keep rates under a fixed
// governor budget: anomaly recall vs healthy-trace retention vs the byte
// fraction kept, the retention tradeoff table in EXPERIMENTS.md.
#include <cinttypes>
#include <vector>

#include "assembly/streaming_assembler.h"
#include "bench/bench_util.h"
#include "server/server.h"

namespace deepflow {
namespace {

constexpr u64 kSpansPerTrace = 8;
constexpr u64 kAnomalousTraceStride = 50;  // every 50th trace gets an error

/// Synthetic load with exact 8-span traces (the generator's id/8 grouping is
/// overridden so trace membership is closed-form) and a controlled anomaly
/// population: every 50th trace opens with an error span. Everything else is
/// healthy — tail sampling should be free to downsample it.
std::vector<agent::Span> offered_spans(u64 count,
                                       const bench::SyntheticCluster& cluster) {
  Rng rng(4242);
  std::vector<agent::Span> spans;
  spans.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    agent::Span span = bench::make_synthetic_span(i + 1, rng, cluster);
    span.systrace_id = i / kSpansPerTrace + 1;
    span.ok = true;
    span.status_code = 200;
    if (span.systrace_id % kAnomalousTraceStride == 1 &&
        i % kSpansPerTrace == 0) {
      span.ok = false;
      span.status_code = 500;
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

/// Sweep config (phase C): spans arrive at 1 us spacing, so a 2 ms disorder
/// window keeps every 8-span trace (8 us wide) intact while forcing window
/// closes to happen during ingest rather than piling up for the final flush
/// — the sweep exercises the full streaming path, not just the flush.
server::StreamingAssemblyConfig streaming_config() {
  server::StreamingAssemblyConfig config;
  config.enabled = true;
  config.disorder_window_ns = 2 * kMillisecond;
  return config;
}

/// Ingest every span through the per-span path and return the wall seconds
/// of the ingest loop alone — the critical-path number both phases share.
double timed_ingest(server::DeepFlowServer& server,
                    const std::vector<agent::Span>& spans) {
  const bench::WallTimer timer;
  for (const agent::Span& s : spans) server.ingest(agent::Span(s));
  return timer.elapsed_seconds();
}

struct SweepResult {
  u32 keep_pct = 0;
  double anomaly_recall = 0;
  double healthy_retention = 0;
  double retained_ratio = 0;
  u64 kept_anomalous = 0;
  u64 kept_sampled = 0;
  u64 dropped = 0;
};

SweepResult run_sweep(u32 keep_pct, const std::vector<agent::Span>& spans,
                      const bench::SyntheticCluster& cluster) {
  server::ServerConfig config;
  config.streaming = streaming_config();
  config.streaming.tail_sampling.enabled = true;
  config.streaming.tail_sampling.healthy_keep_pct = keep_pct;
  // Fixed byte budget across the sweep: the governor accounts every open
  // window and index entry, and the ladder would engage if retention blew
  // through it.
  config.governor.enabled = true;
  config.governor.budget_bytes = size_t{256} << 20;
  server::DeepFlowServer server(&cluster.registry, config);
  assembly::StreamingAssembler sa(config.streaming, &server.mutable_store(),
                                  &server.trace_assembler(),
                                  &server.governor());
  server.attach_streaming(&sa);
  for (const agent::Span& s : spans) server.ingest(agent::Span(s));
  sa.flush();

  const server::AssemblyTelemetry t = sa.telemetry();
  SweepResult result;
  result.keep_pct = keep_pct;
  result.kept_anomalous = t.kept_anomalous_traces;
  result.kept_sampled = t.kept_sampled_traces;
  result.dropped = t.dropped_traces;

  // Recall over the spans of the injected anomalous traces: every member
  // must still be servable from the materialized index at full fidelity.
  u64 anomalous_spans = 0;
  u64 served = 0;
  for (const agent::Span& s : spans) {
    if (s.systrace_id % kAnomalousTraceStride != 1) continue;
    ++anomalous_spans;
    if (sa.completed(s.span_id) != nullptr) ++served;
  }
  result.anomaly_recall =
      anomalous_spans == 0
          ? 1.0
          : static_cast<double>(served) / static_cast<double>(anomalous_spans);

  // Healthy population = finalized minus everything the anomaly detector
  // kept (injected errors plus natural latency outliers).
  const u64 healthy = t.finalized_traces - t.kept_anomalous_traces;
  result.healthy_retention =
      healthy == 0 ? 0.0
                   : static_cast<double>(t.kept_sampled_traces) /
                         static_cast<double>(healthy);
  const u64 total_bytes = t.retained_bytes + t.dropped_bytes;
  result.retained_ratio =
      total_bytes == 0 ? 1.0
                       : static_cast<double>(t.retained_bytes) /
                             static_cast<double>(total_bytes);
  return result;
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  const u64 span_count = args.quick ? 16'000 : 160'000;
  bench::print_header(
      "Streaming assembly — grouping overhead, finalize capacity, sampling");

  const bench::SyntheticCluster cluster = bench::make_synthetic_cluster(8, 8, 4);
  const auto spans = offered_spans(span_count, cluster);
  std::printf("\n  offered: %" PRIu64 " spans in %" PRIu64
              " traces (every %" PRIu64 "th anomalous)\n\n",
              span_count, span_count / kSpansPerTrace, kAnomalousTraceStride);

  // Phase A: the ingest pipeline with no streaming hook attached.
  double baseline_sps = 0;
  {
    server::DeepFlowServer baseline(&cluster.registry);
    const double seconds = timed_ingest(baseline, spans);
    baseline_sps = static_cast<double>(span_count) / seconds;
  }

  // Phase B: streaming on, sampling off. The two pipeline stages measured
  // apart: the ingest loop pays only for grouping (the default 60 s disorder
  // window means no window is closable during this short run), then the
  // flush drain finalizes every window — the capacity of the finalizer
  // stage, which production deployments overlap with ingest on the
  // finalize_workers pool rather than paying per span.
  double streaming_sps = 0;
  double finalize_sps = 0;
  u64 finalized = 0;
  {
    server::ServerConfig config;
    config.streaming.enabled = true;
    server::DeepFlowServer server(&cluster.registry, config);
    assembly::StreamingAssembler sa(config.streaming, &server.mutable_store(),
                                    &server.trace_assembler(),
                                    &server.governor());
    server.attach_streaming(&sa);
    const double ingest_seconds = timed_ingest(server, spans);
    streaming_sps = static_cast<double>(span_count) / ingest_seconds;
    const bench::WallTimer drain;
    sa.flush();
    const double drain_seconds = drain.elapsed_seconds();
    finalize_sps = static_cast<double>(span_count) / drain_seconds;
    finalized = sa.telemetry().finalized_traces;
  }
  const double overhead_pct =
      100.0 * (baseline_sps - streaming_sps) / baseline_sps;
  std::printf("  %-28s %14.0f spans/sec\n", "baseline ingest", baseline_sps);
  std::printf("  %-28s %14.0f spans/sec  (%+.1f%% vs baseline)\n",
              "streaming ingest", streaming_sps, -overhead_pct);
  std::printf("  %-28s %14.0f spans/sec  (%" PRIu64
              " traces; runs on the worker pool)\n\n",
              "window finalization", finalize_sps, finalized);
  report.add("spans_per_sec_baseline", baseline_sps);
  report.add("spans_per_sec_streaming", streaming_sps);
  report.add("streaming_overhead_pct", overhead_pct);
  report.add("finalize_spans_per_sec", finalize_sps);

  // Phase C: tail-sampling sweep under a fixed 256 MB governor budget.
  std::printf("  %-8s %8s %12s %12s %10s %10s %10s\n", "keep%", "recall",
              "healthy ret", "bytes kept", "anom", "sampled", "dropped");
  for (const u32 keep_pct : {5u, 25u, 50u}) {
    const SweepResult row = run_sweep(keep_pct, spans, cluster);
    std::printf("  %6u%% %8.3f %11.1f%% %11.1f%% %10" PRIu64 " %10" PRIu64
                " %10" PRIu64 "\n",
                row.keep_pct, row.anomaly_recall,
                100.0 * row.healthy_retention, 100.0 * row.retained_ratio,
                row.kept_anomalous, row.kept_sampled, row.dropped);
    const std::string prefix = "keep" + std::to_string(keep_pct) + "_";
    report.add(prefix + "anomaly_recall", row.anomaly_recall);
    report.add(prefix + "healthy_retention", row.healthy_retention);
    report.add(prefix + "retained_bytes_ratio", row.retained_ratio);
  }
  std::printf("\n");
  return report.write() ? 0 : 1;
}
