// Fig 3 — lines of code in distributed-tracing SDK repositories: the
// maintenance burden that motivates DeepFlow's single-framework design
// (one eBPF collection plane instead of per-language SDKs).
//
// The per-repository LOC figures below are the published magnitudes for the
// OpenTelemetry / Jaeger / Zipkin / SkyWalking SDK families circa the
// paper. For contrast, the harness counts this repository's single
// collection plane (everything a new language would need: zero lines).
#include <array>

#include "bench/bench_util.h"

namespace deepflow {
namespace {

struct SdkRepo {
  const char* framework;
  const char* language;
  int loc_thousands;
};

constexpr std::array<SdkRepo, 14> kRepos = {{
    {"opentelemetry", "java", 423},
    {"opentelemetry", "python", 122},
    {"opentelemetry", "go", 170},
    {"opentelemetry", "js", 280},
    {"opentelemetry", "cpp", 160},
    {"jaeger", "java", 76},
    {"jaeger", "python", 24},
    {"jaeger", "go", 46},
    {"jaeger", "nodejs", 31},
    {"zipkin", "java (brave)", 120},
    {"zipkin", "python", 12},
    {"zipkin", "go", 14},
    {"skywalking", "java", 390},
    {"skywalking", "python", 35},
}};

}  // namespace
}  // namespace deepflow

int main() {
  using namespace deepflow;
  bench::print_header(
      "Fig 3 — LOC of distributed tracing SDK repositories (published\n"
      "magnitudes; each language needs its own maintained SDK)");
  std::printf("  %-16s %-16s %10s\n", "framework", "language", "kLOC");
  int total = 0;
  for (const SdkRepo& repo : kRepos) {
    std::printf("  %-16s %-16s %9dk\n", repo.framework, repo.language,
                repo.loc_thousands);
    total += repo.loc_thousands;
  }
  std::printf("  %-16s %-16s %9dk\n", "TOTAL", "(14 SDKs)", total);
  std::printf(
      "\n  DeepFlow equivalent: one kernel-space collection plane, zero\n"
      "  per-language code — adding a language adds 0 LOC (this repo's\n"
      "  agent + ebpf collection layers total a few kLOC, shared by all).\n\n");
  return 0;
}
