// Fig 19 (Appendix B) — DeepFlow Agent impact on a single-VM Nginx under a
// wrk2-style constant-rate load: Baseline, eBPF module only, full Agent.
//
// The paper measures 44k / 31k / 27k rps and the corresponding p50/p90
// inflation under "the theoretically strictest conditions": client and
// server share one 8-vCPU VM, the served work is ~1 ms, and every traced
// event pays kernel-hook plus (for the full agent) user-space processing.
// Per-event charges below are calibrated to those endpoint ratios — an
// order of magnitude above the bare Fig 13 hook latency, exactly as the
// paper's own appendix discusses.
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

enum class Mode { kBaseline, kEbpfOnly, kFullAgent };

kernelsim::KernelConfig config_for(Mode mode) {
  kernelsim::KernelConfig config;
  switch (mode) {
    case Mode::kBaseline:
      break;
    case Mode::kEbpfOnly:
      // Kernel-side collection only (hooks + map staging + perf copy).
      config.kprobe_overhead_ns = 18'000;
      config.tracepoint_overhead_ns = 16'000;
      break;
    case Mode::kFullAgent:
      // Plus the colocated user-space pipeline's amortized share.
      config.kprobe_overhead_ns = 26'000;
      config.tracepoint_overhead_ns = 24'000;
      break;
  }
  return config;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kBaseline: return "baseline";
    case Mode::kEbpfOnly: return "ebpf";
    case Mode::kFullAgent: return "agent";
  }
  return "?";
}

}  // namespace
}  // namespace deepflow

int main() {
  using namespace deepflow;
  bench::print_header(
      "Fig 19 (Appendix B) — Nginx on one VM under wrk2-style load:\n"
      "Baseline vs eBPF module vs full Agent\n"
      "(paper: throughput 44k -> 31k -> 27k rps; p50/p90 inflate with rate)");

  const std::vector<double> rates = {1'000, 2'000, 4'000, 6'000,
                                     7'000, 8'000, 9'000};
  for (const Mode mode :
       {Mode::kBaseline, Mode::kEbpfOnly, Mode::kFullAgent}) {
    std::printf("\n  [%s]\n", mode_name(mode));
    std::printf("  %10s %10s %10s %10s\n", "offered", "achieved", "p50-us",
                "p90-us");
    double max_achieved = 0;
    for (const double rate : rates) {
      workloads::Topology topo =
          workloads::make_nginx_single_vm(17, config_for(mode));
      std::unique_ptr<core::Deployment> deepflow;
      if (mode != Mode::kBaseline) {
        // Attach collection (the hook cost model above charges the node);
        // eBPF-only mode skips the user-space drain.
        core::DeploymentConfig config;
        config.capture_devices = mode == Mode::kFullAgent;
        deepflow = std::make_unique<core::Deployment>(topo.cluster.get(),
                                                      config);
        if (!deepflow->deploy()) return 1;
      }
      const workloads::LoadResult result = topo.app->run_constant_load(
          topo.entry, rate, 2 * kSecond, /*connections=*/96);
      max_achieved = std::max(max_achieved, result.achieved_rps);
      std::printf("  %10.0f %10.0f %10llu %10llu\n", result.offered_rps,
                  result.achieved_rps,
                  (unsigned long long)(result.latency.p50() / 1'000),
                  (unsigned long long)(result.latency.p90() / 1'000));
    }
    std::printf("  peak achieved: %.0f rps\n", max_achieved);
  }
  std::printf("\n");
  return 0;
}
