// Fig 16 — end-to-end performance impact on real microservice demos.
//
// (a) Spring Boot demo: baseline vs Jaeger-style SDK vs DeepFlow.
// (b) Istio Bookinfo:   baseline vs Zipkin-style SDK vs DeepFlow.
//
// For each configuration the load generator sweeps offered rates and the
// harness prints achieved throughput and latency percentiles, plus the
// spans-per-trace each tracer produces. Absolute capacities differ from the
// paper's testbed; the shape to check is the ordering
// (baseline >= SDK >= DeepFlow, all within single-digit percents of each
// other) and the spans-per-trace gap (paper: Jaeger 4 / Zipkin 6 vs
// DeepFlow 18 / 38).
//
// Calibration: with tracing attached, each traced syscall is charged both
// the in-kernel hook latency (Fig 13) and an amortized share of the
// colocated agent's user-space processing, folded into the kernel config's
// per-hook cost (see Appendix B: under the paper's "strictest conditions"
// the measured per-event cost is an order of magnitude above the bare hook
// latency).
#include <functional>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using workloads::Topology;

enum class Mode { kBaseline, kSdk, kDeepFlow };

kernelsim::KernelConfig config_for(Mode mode) {
  kernelsim::KernelConfig config;
  if (mode == Mode::kDeepFlow) {
    // Hook latency + amortized user-space agent share per handler.
    config.kprobe_overhead_ns = 2'500;
    config.tracepoint_overhead_ns = 2'000;
    config.uprobe_overhead_ns = 3'000;
  }
  return config;
}

struct SweepPoint {
  double offered = 0;
  double achieved = 0;
  u64 p50_us = 0;
  u64 p90_us = 0;
};

struct AppFactory {
  std::string name;
  std::function<Topology(kernelsim::KernelConfig)> make;
  std::vector<std::string> sdk_services;  // which services the SDK covers
  std::string sdk_name;
  std::vector<double> rates;
};

void run_app(const AppFactory& factory) {
  bench::print_header("Fig 16 — " + factory.name +
                      ": baseline vs " + factory.sdk_name + " vs DeepFlow");
  for (const Mode mode : {Mode::kBaseline, Mode::kSdk, Mode::kDeepFlow}) {
    const char* label = mode == Mode::kBaseline ? "baseline"
                        : mode == Mode::kSdk    ? factory.sdk_name.c_str()
                                                : "deepflow";
    std::printf("\n  [%s]\n", label);
    std::printf("  %10s %10s %10s %10s\n", "offered", "achieved", "p50-us",
                "p90-us");
    size_t spans_per_trace = 0;
    for (const double rate : factory.rates) {
      Topology topo = factory.make(config_for(mode));
      std::unique_ptr<core::Deployment> deepflow;
      if (mode == Mode::kDeepFlow) {
        deepflow = std::make_unique<core::Deployment>(topo.cluster.get());
        if (!deepflow->deploy()) return;
      } else if (mode == Mode::kSdk) {
        for (const std::string& service : factory.sdk_services) {
          topo.app->instrument(topo.services.at(service),
                               [](agent::Span&&) {});
        }
      }
      const workloads::LoadResult result = topo.app->run_constant_load(
          topo.entry, rate, 2 * kSecond, /*connections=*/128);
      std::printf("  %10.0f %10.0f %10llu %10llu\n", result.offered_rps,
                  result.achieved_rps,
                  (unsigned long long)(result.latency.p50() / 1'000),
                  (unsigned long long)(result.latency.p90() / 1'000));
      if (mode == Mode::kDeepFlow && spans_per_trace == 0) {
        deepflow->finish();
        const auto starts = deepflow->server().find_spans(
            [](const agent::Span& s) {
              return s.kind == agent::SpanKind::kSystem &&
                     !s.from_server_side && s.endpoint == "/";
            });
        if (!starts.empty()) {
          spans_per_trace =
              deepflow->server().query_trace(starts.front()).spans.size();
        }
      }
    }
    if (mode == Mode::kSdk) {
      std::printf("  spans per trace: %zu (%s instruments %zu services)\n",
                  factory.sdk_services.size(), factory.sdk_name.c_str(),
                  factory.sdk_services.size());
    } else if (mode == Mode::kDeepFlow) {
      std::printf("  spans per trace: %zu (zero-code, incl. network hops)\n",
                  spans_per_trace);
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace deepflow

int main() {
  using namespace deepflow;
  run_app(AppFactory{
      "Spring Boot demo",
      [](kernelsim::KernelConfig config) {
        return workloads::make_spring_boot_demo(11, config);
      },
      {"gateway", "front", "cart", "product"},
      "jaeger",
      {2'000, 3'000, 4'000, 4'500, 5'000, 6'000},
  });
  run_app(AppFactory{
      "Istio Bookinfo",
      [](kernelsim::KernelConfig config) {
        return workloads::make_bookinfo(13, config);
      },
      {"gateway", "productpage", "details", "reviews", "ratings",
       "envoy-productpage"},
      "zipkin",
      {1'000, 2'000, 2'500, 3'000, 3'500, 4'000},
  });
  return 0;
}
