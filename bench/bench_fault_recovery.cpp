// Fault-recovery bench: pipeline throughput and trace completeness across
// transport loss rates {0, 0.1%, 1%, 10%} x retries {on, off}.
//
// Each cell runs the spring_boot_demo workload through the batched
// SpanTransport with a seeded drop fault at the agent -> server channel and
// measures:
//   * throughput — spans stored per wall-clock second of the whole
//     pipeline run (collection, parse, transport, ingest);
//   * completeness — spans stored / spans stored by the loss-free run
//     (the EXPERIMENTS.md degradation table);
//   * recovery work — retries scheduled, duplicates filtered by the
//     server's idempotent ingest, spans abandoned after max_attempts.
//
// With retries on, completeness stays at 1.0 until the loss rate is high
// enough to exhaust max_attempts; with retries off, completeness decays
// roughly as (1 - p) per batch send. Usage:
//   bench_fault_recovery [--json out.json] [--quick]
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

constexpr double kLossRates[] = {0.0, 0.001, 0.01, 0.1};

struct CellResult {
  double loss = 0;
  bool retries = false;
  double seconds = 0;
  u64 stored = 0;
  u64 offered = 0;
  agent::TransportStats transport;
  u64 duplicate_spans = 0;
};

CellResult run_cell(double loss, bool retries, double rps) {
  workloads::Topology topo = workloads::make_spring_boot_demo(11);
  core::DeploymentConfig config;
  config.transport.direct = false;
  config.transport.batch_spans = 16;
  config.transport.retries = retries;
  config.transport.max_attempts = 40;
  config.faults.transport_send.drop = loss;
  core::Deployment deepflow(topo.cluster.get(), config);
  if (!deepflow.deploy()) {
    std::fprintf(stderr, "deploy failed: %s\n", deepflow.error().c_str());
    return {};
  }

  CellResult cell;
  cell.loss = loss;
  cell.retries = retries;
  const bench::WallTimer timer;
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond);
  deepflow.finish();
  cell.seconds = timer.elapsed_seconds();

  const server::IngestTelemetry telemetry =
      deepflow.server().ingest_telemetry();
  for (const size_t rows : telemetry.shard_rows) cell.stored += rows;
  cell.duplicate_spans = telemetry.duplicate_spans;
  cell.transport = deepflow.aggregate_transport_stats();
  cell.offered = cell.transport.offered;
  return cell;
}

std::string loss_key(double loss) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", loss * 100.0);
  std::string key(buf);
  for (char& c : key) {
    if (c == '.') c = 'p';
  }
  return key;
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const double rps = args.quick ? 8.0 : 40.0;

  bench::print_header(
      "Fault recovery: completeness & throughput vs transport loss");
  std::printf("  %-8s %-8s %10s %12s %14s %9s %9s %9s\n", "loss", "retries",
              "stored", "complete", "spans/sec", "resends", "deduped",
              "gave-up");

  bench::JsonReport report(args.json_path);
  double baseline_stored = 0;
  for (const bool retries : {true, false}) {
    for (const double loss : kLossRates) {
      const CellResult cell = run_cell(loss, retries, rps);
      if (baseline_stored == 0 && loss == 0.0) {
        baseline_stored = static_cast<double>(cell.stored);
      }
      const double completeness =
          baseline_stored > 0
              ? static_cast<double>(cell.stored) / baseline_stored
              : 0.0;
      const double throughput =
          cell.seconds > 0 ? static_cast<double>(cell.stored) / cell.seconds
                           : 0.0;
      char loss_label[16];
      std::snprintf(loss_label, sizeof(loss_label), "%.2f%%", loss * 100.0);
      std::printf("  %-8s %-8s %10" PRIu64 " %12.4f %14.0f %9" PRIu64
                  " %9" PRIu64 " %9" PRIu64 "\n",
                  loss_label, retries ? "on" : "off", cell.stored,
                  completeness, throughput, cell.transport.retries,
                  cell.duplicate_spans, cell.transport.gave_up_spans);
      const std::string key = "loss_" + loss_key(loss) + "_retries_" +
                              (retries ? "on" : "off");
      report.add(key + "_completeness", completeness);
      report.add(key + "_spans_per_sec", throughput);
      report.add(key + "_stored", static_cast<double>(cell.stored));
      report.add(key + "_gave_up", static_cast<double>(cell.transport.gave_up_spans));
    }
  }
  return report.write() ? 0 : 1;
}
