// Ablation — one-shot per-connection protocol inference vs re-inferring on
// every message (§3.3.1: DeepFlow executes "a one-time protocol inference
// for each newly established connection").
#include "agent/flow_inference.h"
#include "bench/bench_util.h"
#include "workloads/payloads.h"

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  bench::print_header(
      "Ablation — protocol inference caching\n"
      "(5e5 messages across 512 long-lived connections, mixed protocols)");

  const protocols::ProtocolRegistry registry =
      protocols::ProtocolRegistry::with_builtin();
  constexpr size_t kFlows = 512;
  const size_t kMessages = args.quick ? 50'000 : 500'000;

  // Pre-build one representative payload per flow.
  std::vector<std::string> payloads;
  workloads::RequestContext ctx;
  for (size_t i = 0; i < kFlows; ++i) {
    const auto proto = static_cast<protocols::L7Protocol>(1 + i % 8);
    payloads.push_back(
        workloads::build_request_payload(proto, "bench", i + 1, ctx));
  }

  std::printf("  %-22s %12s %16s %14s\n", "mode", "seconds", "inference-runs",
              "ns/message");
  for (const bool reinfer : {false, true}) {
    agent::FlowInferenceConfig config;
    config.reinfer_every_message = reinfer;
    agent::FlowProtocolCache cache(&registry, config);
    Rng rng(5);
    const bench::WallTimer timer;
    u64 classified = 0;
    for (size_t m = 0; m < kMessages; ++m) {
      const size_t flow = rng.below(kFlows);
      if (cache.parser_for(flow + 1, payloads[flow]) != nullptr) ++classified;
    }
    const double seconds = timer.elapsed_seconds();
    std::printf("  %-22s %12.3f %16llu %14.1f\n",
                reinfer ? "re-infer every msg" : "one-shot (DeepFlow)",
                seconds, (unsigned long long)cache.inference_runs(),
                seconds * 1e9 / static_cast<double>(kMessages));
    const std::string prefix =
        reinfer ? "inference_reinfer_" : "inference_oneshot_";
    report.add(prefix + "ns_per_msg",
               seconds * 1e9 / static_cast<double>(kMessages));
    report.add(prefix + "runs", static_cast<double>(cache.inference_runs()));
    if (classified == 0) return 1;
  }
  std::printf(
      "\n  shape: caching reduces signature scans from one per message to\n"
      "  one per connection; per-message cost drops accordingly.\n\n");
  return report.write() ? 0 : 1;
}
