// Shared helpers for the reproduction benches: wall-clock measurement,
// paper-style table printing, and synthetic span generation.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "agent/span.h"
#include "common/rand.h"
#include "netsim/resource.h"

namespace deepflow::bench {

/// Standard bench flags: `--json <path>` dumps the bench's metrics as one
/// flat JSON object (BENCH_*.json perf trajectories accumulate across PRs);
/// `--quick` shrinks the workload to a smoke-test size (the TSan gate in
/// scripts/check.sh runs benches this way).
struct BenchArgs {
  std::string json_path;
  bool quick = false;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else {
      std::fprintf(stderr, "unknown arg %s (expected --json <path>, --quick)\n",
                   argv[i]);
    }
  }
  return args;
}

/// Flat metric sink: add(key, value) during the run, write() once at the
/// end. Writing is a no-op unless `--json` provided a path.
class JsonReport {
 public:
  explicit JsonReport(std::string path = {}) : path_(std::move(path)) {}

  void add(const std::string& key, double value) {
    entries_.emplace_back(key, value);
  }

  /// Returns false (with a message on stderr) if the file cannot be
  /// written; a path-less report always succeeds silently.
  bool write() const {
    if (path_.empty()) return true;
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(out, "{\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(out, "  \"%s\": %.6f%s\n", entries_[i].first.c_str(),
                   entries_[i].second, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("  wrote %zu metrics to %s\n", entries_.size(), path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// Wall-clock timer for real CPU-path measurements (micro benches measure
/// the implementation, not the simulated clock).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  u64 elapsed_ns() const {
    return static_cast<u64>(elapsed_seconds() * 1e9);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::string& label, const std::string& value) {
  std::printf("  %-44s %s\n", label.c_str(), value.c_str());
}

/// Populate a registry with a production-like resource inventory and return
/// pod IPs usable for synthetic spans.
struct SyntheticCluster {
  netsim::ResourceRegistry registry;
  std::vector<Ipv4> pod_ips;
};

inline SyntheticCluster make_synthetic_cluster(size_t nodes, size_t pods_per_node,
                                               size_t labels_per_pod) {
  SyntheticCluster out;
  const auto vpc = out.registry.create_vpc("vpc-prod", "region-east");
  for (size_t n = 0; n < nodes; ++n) {
    const auto node =
        out.registry.create_node(vpc, "node-" + std::to_string(n),
                                 "az-" + std::to_string(n % 3));
    const auto service =
        out.registry.create_service(vpc, "svc-" + std::to_string(n % 8));
    for (size_t p = 0; p < pods_per_node; ++p) {
      std::vector<netsim::Label> labels;
      for (size_t l = 0; l < labels_per_pod; ++l) {
        labels.push_back({"label-" + std::to_string(l),
                          "value-" + std::to_string((n * 31 + p * 7 + l) % 50)});
      }
      const Ipv4 ip{static_cast<u32>((10u << 24) | (n << 8) | (p + 1))};
      out.registry.create_pod(node, "pod-" + std::to_string(n) + "-" +
                                        std::to_string(p),
                              ip, service, std::move(labels));
      out.pod_ips.push_back(ip);
    }
  }
  return out;
}

/// One synthetic traced span between two random pods.
inline agent::Span make_synthetic_span(u64 id, Rng& rng,
                                       const SyntheticCluster& cluster) {
  agent::Span span;
  span.span_id = id;
  span.kind = agent::SpanKind::kSystem;
  span.start_ts = id * 1'000;
  span.end_ts = span.start_ts + rng.between(100'000, 5'000'000);
  span.host = "node-" + std::to_string(rng.below(16));
  span.pid = static_cast<Pid>(100 + rng.below(64));
  span.tid = static_cast<Tid>(1000 + rng.below(512));
  span.systrace_id = id / 8 + 1;
  span.req_tcp_seq = static_cast<TcpSeq>(rng.next());
  span.resp_tcp_seq = static_cast<TcpSeq>(rng.next());
  span.protocol = protocols::L7Protocol::kHttp1;
  span.method = "GET";
  span.endpoint = "/api/v1/item/" + std::to_string(rng.below(100));
  span.status_code = rng.chance(0.02) ? 500 : 200;
  const Ipv4 src = cluster.pod_ips[rng.below(cluster.pod_ips.size())];
  const Ipv4 dst = cluster.pod_ips[rng.below(cluster.pod_ips.size())];
  span.tuple = FiveTuple{src, dst, static_cast<u16>(40000 + rng.below(20000)),
                         8080, L4Proto::kTcp};
  span.int_tags.vpc_id = 1;
  span.int_tags.client_ip = src.addr;
  span.int_tags.server_ip = dst.addr;
  return span;
}

}  // namespace deepflow::bench
