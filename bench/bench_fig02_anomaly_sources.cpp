// Fig 2 — sources of microservice performance anomalies.
//
// (a)/(b) are survey results over DeepFlow's 26 enterprise customers; the
// distributions below re-emit that published data. To show the simulator
// covers every category, the harness then injects one fault of each class
// into a live cluster and verifies DeepFlow-visible evidence appears.
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

void print_survey() {
  bench::print_header(
      "Fig 2(a) — where production anomalies originate (published survey)");
  bench::print_row("network infrastructure", "47.3 %");
  bench::print_row("application", "32.7 %");
  bench::print_row("computing infrastructure", "12.7 %");
  bench::print_row("external traffic surge", "7.3 %");

  bench::print_header(
      "Fig 2(b) — network-side breakdown (published survey)");
  bench::print_row("virtual network", "30.8 %");
  bench::print_row("physical network", "~6 %");
  bench::print_row("network middleware", "~4 %");
  bench::print_row("cluster services (DNS/gateway)", "~4 %");
  bench::print_row("node configuration", "~2 %");
}

void census() {
  bench::print_header(
      "Fault-injection census — each anomaly class reproduced in the\n"
      "simulator and observed through DeepFlow-visible signals");

  // Virtual network: vswitch drops -> TCP retransmissions in flow metrics.
  {
    workloads::Topology topo = workloads::make_spring_boot_demo();
    topo.cluster->vswitch_of(topo.cluster->nodes()[1])
        ->fault.drop_probability = 0.05;
    core::Deployment df(topo.cluster.get());
    df.deploy();
    topo.app->run_constant_load(topo.entry, 50.0, 1 * kSecond);
    df.finish();
    u64 retrans = 0;
    for (const auto& [tuple, metrics] : topo.cluster->fabric().flows()) {
      retrans += metrics.retransmissions;
    }
    bench::print_row("virtual network (vswitch loss)",
                     std::to_string(retrans) + " retransmissions observed");
  }

  // Physical network: defective NIC -> ARP storm in device metrics.
  {
    workloads::Topology topo = workloads::make_ecommerce();
    netsim::Device* nic = topo.cluster->pnic_of(topo.cluster->nodes()[0]);
    nic->fault.arp_anomaly = true;
    core::Deployment df(topo.cluster.get());
    df.deploy();
    topo.app->run_constant_load(topo.entry, 50.0, 1 * kSecond);
    df.finish();
    bench::print_row("physical network (NIC ARP storm)",
                     std::to_string(nic->metrics.arp_requests) +
                         " ARP requests at one device");
  }

  // Middleware: broker backlog -> slow spans + resets (§4.1.3 shape).
  {
    workloads::Topology topo = workloads::make_mq_pipeline();
    topo.app->instance(topo.services.at("rabbitmq"), 0)->set_slowdown(30.0);
    core::Deployment df(topo.cluster.get());
    df.deploy();
    topo.app->run_constant_load(topo.entry, 40.0, 1 * kSecond);
    df.finish();
    const auto mq_spans = df.server().find_spans([](const agent::Span& s) {
      return s.protocol == protocols::L7Protocol::kMqtt && s.from_server_side;
    });
    DurationNs total = 0;
    for (const u64 id : mq_spans) {
      total += df.server().store().row(id)->span.duration();
    }
    bench::print_row(
        "middleware (MQ backlog)",
        "avg broker span " +
            std::to_string(mq_spans.empty() ? 0 : total / mq_spans.size() /
                                                      1000) +
            " us across " + std::to_string(mq_spans.size()) + " spans");
  }

  // Application: faulty pod -> HTTP error spans with pod tags.
  {
    workloads::Topology topo = workloads::make_nginx_ingress_case(2);
    core::Deployment df(topo.cluster.get());
    df.deploy();
    topo.app->run_constant_load(topo.entry, 60.0, 1 * kSecond, 6);
    df.finish();
    const auto errors = df.server().find_spans([](const agent::Span& s) {
      return s.status_code == 404 && s.from_server_side;
    });
    bench::print_row("application (bad deployment)",
                     std::to_string(errors.size()) + " 404 spans captured");
  }

  // External surge: overload -> latency inflation at constant capacity.
  {
    workloads::Topology topo = workloads::make_nginx_single_vm();
    const auto result =
        topo.app->run_constant_load(topo.entry, 12'000.0, 1 * kSecond, 64);
    bench::print_row("external traffic surge",
                     "p90 " + std::to_string(result.latency.p90() / 1000) +
                         " us at " + std::to_string((int)result.achieved_rps) +
                         " rps achieved");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace deepflow

int main() {
  deepflow::print_survey();
  deepflow::census();
  return 0;
}
