// Ablation — perf buffer sizing vs event loss under burst.
//
// Per-CPU perf rings are bounded; when the user-space drain falls behind a
// burst, events are lost (the agent surfaces the loss counter rather than
// hiding it). This sweep holds the drain back until the burst completes —
// the worst case — and measures loss against ring capacity.
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  bench::print_header(
      "Ablation — perf ring capacity vs event loss\n"
      "(burst of ~100 rps x 2 s, drain deferred to the end of the burst)");
  std::printf("  %14s %12s %12s %10s\n", "ring-capacity", "records", "lost",
              "loss%");

  const std::vector<size_t> capacities =
      args.quick ? std::vector<size_t>{256, 16384}
                 : std::vector<size_t>{256, 1024, 4096, 16384, 65536};
  for (const size_t capacity : capacities) {
    workloads::Topology topo = workloads::make_spring_boot_demo();
    core::DeploymentConfig config;
    config.agent.collector.perf_ring_capacity = capacity;
    core::Deployment deepflow(topo.cluster.get(), config);
    if (!deepflow.deploy()) return 1;
    topo.app->run_constant_load(topo.entry, 100.0,
                                args.quick ? 1 * kSecond : 2 * kSecond);
    deepflow.finish();
    const agent::AgentStats stats = deepflow.aggregate_stats();
    const u64 produced =
        stats.syscall_records + stats.packet_records + stats.perf_lost;
    const double loss_pct =
        produced > 0 ? 100.0 * static_cast<double>(stats.perf_lost) /
                           static_cast<double>(produced)
                     : 0.0;
    std::printf("  %14zu %12llu %12llu %9.2f%%\n", capacity,
                (unsigned long long)produced,
                (unsigned long long)stats.perf_lost, loss_pct);
    report.add("perfbuf_" + std::to_string(capacity) + "_loss_pct", loss_pct);
  }
  std::printf(
      "\n  shape: loss collapses to zero once per-CPU capacity covers the\n"
      "  burst backlog; undersized rings lose a fixed fraction of events\n"
      "  and every loss is visible in the agent's counters.\n\n");
  return report.write() ? 0 : 1;
}
