// Overload-control characterization (ISSUE 9): a fixed byte budget sized to
// the 1x offered load, then the same server pushed at 1x/2x/5x/10x that
// load. Per load the bench reports ingest throughput, bytes actually
// retained against the budget, anomaly recall (errors + incomplete sessions
// that survived the squeeze), and the stored fraction of offered spans —
// the degradation-ladder tradeoff curve in one table.
//
// Spans arrive through DeepFlowServer::try_ingest_batch, the refusal-aware
// entry point the SpanTransport uses, with a bounded per-batch retry loop
// standing in for the transport's retry-after handling.
#include <cinttypes>
#include <unordered_set>

#include "bench/bench_util.h"
#include "server/server.h"

namespace deepflow {
namespace {

constexpr size_t kBatchSpans = 256;
constexpr int kRetryAttempts = 3;

struct BenchScale {
  size_t base_spans = 40'000;  // the 1x offered load
  std::vector<u32> multipliers = {1, 2, 5, 10};
};

BenchScale scale_for(const bench::BenchArgs& args) {
  BenchScale scale;
  if (args.quick) {
    scale.base_spans = 5'000;
    scale.multipliers = {1, 5};
  }
  return scale;
}

/// Same anomaly mix as tests/integration/test_overload.cpp: ok derives from
/// the synthetic status code (2% errors) plus a thin incomplete slice.
std::vector<agent::Span> offered_spans(size_t count,
                                       const bench::SyntheticCluster& cluster,
                                       u64 seed) {
  Rng rng(seed);
  std::vector<agent::Span> spans;
  spans.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    agent::Span span = bench::make_synthetic_span(i + 1, rng, cluster);
    span.ok = span.status_code < 500;
    span.incomplete = (i % 97) == 0;
    spans.push_back(std::move(span));
  }
  return spans;
}

server::ServerConfig governed_config(size_t budget_bytes) {
  server::ServerConfig config;
  config.governor.enabled = true;
  config.governor.budget_bytes = budget_bytes;
  config.governor.seal_interval_spans = 512;
  // The soak ladder: refusal reserves the top 20% of the budget for
  // anomalies (see tests/integration/test_overload.cpp).
  config.governor.seal_enter = 0.40;
  config.governor.downsample_enter = 0.50;
  config.governor.shed_enter = 0.65;
  config.governor.refuse_enter = 0.80;
  return config;
}

struct LoadResult {
  u32 multiplier = 0;
  u64 offered = 0;
  double seconds = 0;
  size_t retained_bytes = 0;
  u64 stored = 0;
  double anomaly_recall = 1.0;
  OverloadLevel final_level = OverloadLevel::kNormal;
};

LoadResult run_load(u32 multiplier, size_t base_spans, size_t budget_bytes,
                    const bench::SyntheticCluster& cluster) {
  const auto spans =
      offered_spans(base_spans * multiplier, cluster, 77 + multiplier);
  server::DeepFlowServer server(&cluster.registry,
                                governed_config(budget_bytes));

  LoadResult result;
  result.multiplier = multiplier;
  result.offered = spans.size();
  const bench::WallTimer timer;
  for (size_t base = 0; base < spans.size(); base += kBatchSpans) {
    const auto end =
        spans.begin() +
        static_cast<ptrdiff_t>(std::min(base + kBatchSpans, spans.size()));
    std::vector<agent::Span> batch(
        spans.begin() + static_cast<ptrdiff_t>(base), end);
    for (int attempt = 0; attempt < kRetryAttempts; ++attempt) {
      if (server.try_ingest_batch(batch).status !=
          agent::SinkStatus::kOverloaded) {
        break;
      }
      batch.assign(spans.begin() + static_cast<ptrdiff_t>(base), end);
    }
  }
  result.seconds = timer.elapsed_seconds();
  result.retained_bytes = server.governor().total_bytes();
  result.stored = server.ingest_telemetry().spans;
  result.final_level = server.governor().level();

  std::unordered_set<u64> stored_ids;
  for (const agent::Span& s : server.query_span_list(0, ~TimestampNs{0})) {
    stored_ids.insert(s.span_id);
  }
  u64 anomalous = 0;
  u64 kept = 0;
  for (const agent::Span& s : spans) {
    if (s.ok && !s.incomplete) continue;
    ++anomalous;
    if (stored_ids.count(s.span_id) != 0) ++kept;
  }
  result.anomaly_recall =
      anomalous == 0 ? 1.0
                     : static_cast<double>(kept) / static_cast<double>(anomalous);
  return result;
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  const BenchScale scale = scale_for(args);
  bench::print_header(
      "Overload control — fixed byte budget vs 1x/2x/5x/10x offered load");

  const bench::SyntheticCluster cluster =
      bench::make_synthetic_cluster(8, 8, 4);

  // Measure what the 1x load costs at full fidelity (telemetry-only pass),
  // then size the budget so 1x tops out just below the first rung
  // (seal_enter = 0.40): 1x stays whole, 2x brushes refusal, 5x/10x are
  // deep overload.
  size_t budget_bytes = 0;
  {
    const auto spans = offered_spans(scale.base_spans, cluster, 77 + 1);
    server::ServerConfig measure_config;
    measure_config.governor.enabled = true;  // accounts, never degrades
    server::DeepFlowServer measure(&cluster.registry, measure_config);
    for (const agent::Span& s : spans) measure.ingest(agent::Span(s));
    budget_bytes = measure.governor().total_bytes() * 5 / 2;
  }
  std::printf("\n  budget: %zu bytes (2.5x the full-fidelity cost of the 1x "
              "load, %zu spans)\n\n",
              budget_bytes, scale.base_spans);
  report.add("budget_bytes", static_cast<double>(budget_bytes));

  std::printf("  %-6s %12s %14s %16s %10s %8s\n", "load", "offered",
              "spans/sec", "bytes retained", "stored", "recall");
  for (const u32 multiplier : scale.multipliers) {
    const LoadResult row =
        run_load(multiplier, scale.base_spans, budget_bytes, cluster);
    const double spans_per_sec =
        static_cast<double>(row.offered) / row.seconds;
    const double stored_fraction =
        static_cast<double>(row.stored) / static_cast<double>(row.offered);
    std::printf("  %3ux %13" PRIu64 " %14.0f %16zu %9.1f%% %8.3f  [%s]\n",
                row.multiplier, row.offered, spans_per_sec,
                row.retained_bytes, 100.0 * stored_fraction,
                row.anomaly_recall, overload_level_name(row.final_level));
    const std::string prefix = "load_" + std::to_string(multiplier) + "x_";
    report.add(prefix + "spans_per_sec", spans_per_sec);
    report.add(prefix + "bytes_retained",
               static_cast<double>(row.retained_bytes));
    report.add(prefix + "stored_fraction", stored_fraction);
    report.add(prefix + "anomaly_recall", row.anomaly_recall);
  }
  std::printf("\n");
  return report.write() ? 0 : 1;
}
