// Fig 15 — user query delay: span-list queries over a 15-minute window and
// full trace-assembly queries, each issued sequentially and in random order
// (paper: trace query ~1 s on the production store; span list ~0.06 s).
// Queries here run against an in-memory store, so absolute numbers are
// faster; the shape to check is trace >> span-list and sequential ~ random.
//
// Two additions beyond the paper figure:
//   * ablation — the optimized assembler (delta search, shard-routed
//     lookups, keyed parent buckets) vs the frozen naive reference
//     (tests/reference/naive_assembler.h: full re-search + O(n²·rules)
//     parent scan), verified byte-identical before timing;
//   * batch assembly scaling — DeepFlowServer::assemble_traces across
//     1/2/4/8 workers (wall-clock scaling needs hardware parallelism;
//     single-core hosts mostly measure coordination overhead).
//
// Flags: --quick (tiny workload, used by the TSan smoke in check.sh),
// --json <path> (metric dump for BENCH_*.json trajectories).
#include <algorithm>
#include <thread>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "tests/reference/naive_assembler.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

struct QueryStats {
  double mean_ms = 0;
  double median_ms = 0;  // robust to scheduler hiccups on shared hosts
  double max_ms = 0;
};

template <typename Fn>
QueryStats measure(size_t count, Fn&& run_one) {
  QueryStats stats;
  std::vector<double> samples;
  samples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const bench::WallTimer timer;
    run_one(i);
    const double ms = timer.elapsed_seconds() * 1e3;
    samples.push_back(ms);
    stats.mean_ms += ms;
    stats.max_ms = std::max(stats.max_ms, ms);
  }
  stats.mean_ms /= static_cast<double>(count);
  std::sort(samples.begin(), samples.end());
  stats.median_ms = samples[samples.size() / 2];
  return stats;
}

std::string trace_signature(const server::AssembledTrace& trace) {
  std::string out;
  for (const auto& s : trace.spans) {
    out += std::to_string(s.span.span_id) + "<-" +
           std::to_string(s.span.parent_span_id) + "#" +
           std::to_string(s.parent_rule) + ";";
  }
  return out;
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  bench::print_header(
      "Fig 15 — query delay (span-list over a 15-minute window; full trace\n"
      "assembly from a user-chosen span; sequential and random order; plus\n"
      "optimized-vs-naive ablation and batch-assembly scaling)");

  // Load the store through the real pipeline: the Spring Boot demo at a
  // rate that spreads spans over a 15-minute simulated window (--quick:
  // 1 minute). Multi-shard store so shard-routed lookups and reader
  // concurrency are on the measured path.
  const DurationNs window = (args.quick ? 60 : 900) * kSecond;
  const size_t kQueries = args.quick ? 10 : 200;
  workloads::Topology topo = workloads::make_spring_boot_demo();
  core::DeploymentConfig dconfig;
  dconfig.server.store_shards = 8;
  core::Deployment deepflow(topo.cluster.get(), dconfig);
  if (!deepflow.deploy()) return 1;
  topo.app->run_constant_load(topo.entry, 10.0, window);
  deepflow.finish();
  const auto& server = deepflow.server();
  std::printf("  store: %zu spans from %llu sessions (%zu shards)\n",
              server.store().row_count(),
              (unsigned long long)server.ingested_spans(),
              server.store().shard_count());

  // Candidate starting spans: one client span per request.
  std::vector<u64> starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  if (starts.empty()) {
    std::fprintf(stderr, "no starting spans found\n");
    return 1;
  }
  Rng rng(77);
  std::vector<u64> shuffled = starts;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }

  // Span lists are paginated views (1000 rows per page, like the UI).
  constexpr size_t kPage = 1'000;
  const size_t windows = static_cast<size_t>(window / (15 * kSecond));
  const QueryStats span_list_seq = measure(kQueries, [&](size_t i) {
    const TimestampNs from = (i % windows) * 15 * kSecond;
    auto spans = server.query_span_list(from, from + window, kPage);
    if (spans.empty()) std::abort();
  });
  const QueryStats span_list_rand = measure(kQueries, [&](size_t i) {
    const TimestampNs from = (rng.below(windows)) * 15 * kSecond + i % 3;
    auto spans = server.query_span_list(from, from + window, kPage);
    if (spans.empty()) std::abort();
  });
  const QueryStats trace_seq = measure(kQueries, [&](size_t i) {
    auto trace = server.query_trace(starts[i % starts.size()]);
    if (trace.spans.empty()) std::abort();
  });
  const QueryStats trace_rand = measure(kQueries, [&](size_t i) {
    auto trace = server.query_trace(shuffled[i % shuffled.size()]);
    if (trace.spans.empty()) std::abort();
  });

  std::printf("\n  %-28s %12s %12s\n", "query", "mean-ms", "max-ms");
  std::printf("  %-28s %12.3f %12.3f\n", "span list (sequential)",
              span_list_seq.mean_ms, span_list_seq.max_ms);
  std::printf("  %-28s %12.3f %12.3f\n", "span list (random)",
              span_list_rand.mean_ms, span_list_rand.max_ms);
  std::printf("  %-28s %12.3f %12.3f\n", "trace (sequential)",
              trace_seq.mean_ms, trace_seq.max_ms);
  std::printf("  %-28s %12.3f %12.3f\n", "trace (random)",
              trace_rand.mean_ms, trace_rand.max_ms);
  report.add("span_list_seq_mean_ms", span_list_seq.mean_ms);
  report.add("span_list_rand_mean_ms", span_list_rand.mean_ms);
  report.add("trace_seq_mean_ms", trace_seq.mean_ms);
  report.add("trace_rand_mean_ms", trace_rand.mean_ms);

  // ---- Ablation: optimized assembler vs frozen naive reference. ----------
  // Correctness first: every measured start must assemble byte-identically
  // (same span ids, parent assignments, rule ids, display order).
  const server::SpanStore& store = server.store();
  const size_t kAblationStarts = std::min(starts.size(), kQueries);
  for (size_t i = 0; i < kAblationStarts; ++i) {
    const std::string naive =
        trace_signature(server::reference::assemble_naive(store, starts[i]));
    const std::string optimized =
        trace_signature(server.query_trace(starts[i]));
    if (naive != optimized) {
      std::fprintf(stderr, "ablation mismatch at start %llu\n",
                   (unsigned long long)starts[i]);
      return 1;
    }
  }
  const QueryStats naive_stats = measure(kQueries, [&](size_t i) {
    auto trace = server::reference::assemble_naive(
        store, starts[i % kAblationStarts]);
    if (trace.spans.empty()) std::abort();
  });
  const QueryStats optimized_stats = measure(kQueries, [&](size_t i) {
    auto trace = server.query_trace(starts[i % kAblationStarts]);
    if (trace.spans.empty()) std::abort();
  });
  // Median-based speedup: each pass cycles 200 distinct cold traces, and a
  // single preempted sample on a shared host can move a mean by 20%.
  const double ablation_speedup =
      naive_stats.median_ms / optimized_stats.median_ms;
  std::printf("\n  ablation (trace assembly, %zu starts, results verified\n"
              "  byte-identical):\n", kAblationStarts);
  std::printf("  %-28s %10s %10s %10s\n", "assembler", "mean-ms", "median-ms",
              "max-ms");
  std::printf("  %-28s %10.3f %10.3f %10.3f\n", "naive (full re-search, n^2)",
              naive_stats.mean_ms, naive_stats.median_ms, naive_stats.max_ms);
  std::printf("  %-28s %10.3f %10.3f %10.3f\n", "optimized (delta, buckets)",
              optimized_stats.mean_ms, optimized_stats.median_ms,
              optimized_stats.max_ms);
  std::printf("  %-28s %9.2fx (median)\n", "speedup", ablation_speedup);
  report.add("ablation_naive_mean_ms", naive_stats.mean_ms);
  report.add("ablation_naive_median_ms", naive_stats.median_ms);
  report.add("ablation_optimized_mean_ms", optimized_stats.mean_ms);
  report.add("ablation_optimized_median_ms", optimized_stats.median_ms);
  report.add("ablation_speedup", ablation_speedup);

  // ---- Batch assembly scaling: 1/2/4/8 workers. --------------------------
  const size_t batch_size = std::min(starts.size(), args.quick ? size_t{32}
                                                              : size_t{400});
  const std::vector<u64> batch_ids(starts.begin(),
                                   starts.begin() + batch_size);
  const std::vector<server::AssembledTrace> serial_batch =
      server.assemble_traces(batch_ids, 1);
  std::printf("\n  batch assembly (%zu traces via assemble_traces; speedups\n"
              "  need hardware parallelism — detected %u core(s)):\n",
              batch_size, std::thread::hardware_concurrency());
  std::printf("  %8s %12s %14s %12s\n", "workers", "seconds", "traces/sec",
              "speedup");
  double serial_seconds = 0;
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const bench::WallTimer timer;
    const std::vector<server::AssembledTrace> batch =
        server.assemble_traces(batch_ids, workers);
    const double seconds = timer.elapsed_seconds();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (trace_signature(batch[i]) != trace_signature(serial_batch[i])) {
        std::fprintf(stderr, "batch mismatch: workers=%zu slot=%zu\n",
                     workers, i);
        return 1;
      }
    }
    if (workers == 1) serial_seconds = seconds;
    std::printf("  %8zu %12.3f %14.0f %11.2fx\n", workers, seconds,
                static_cast<double>(batch_size) / seconds,
                serial_seconds / seconds);
    report.add("batch_" + std::to_string(workers) + "w_seconds", seconds);
  }

  const server::QueryTelemetry qt = server.query_telemetry();
  std::printf("\n  query telemetry: searches=%llu keys=%llu hits=%llu\n"
              "  rows-touched=%llu shard-locks=%llu tag-cache-hits=%llu\n"
              "  traces=%llu iterations=%llu assembled-spans=%llu\n",
              (unsigned long long)qt.searches,
              (unsigned long long)qt.search_keys,
              (unsigned long long)qt.search_hits,
              (unsigned long long)qt.rows_touched,
              (unsigned long long)qt.shard_locks,
              (unsigned long long)qt.tag_cache_hits,
              (unsigned long long)qt.traces_assembled,
              (unsigned long long)qt.assembly_iterations,
              (unsigned long long)qt.assembled_spans);

  std::printf(
      "\n  note: the paper's absolute numbers (trace ~1 s, span list\n"
      "  ~0.06 s) are dominated by ClickHouse round-trips — Algorithm 1\n"
      "  issues up to 30 sequential database queries per trace. This store\n"
      "  is in-memory, so both queries are milliseconds; the preserved\n"
      "  properties are random ~ sequential and cost scaling with rows\n"
      "  touched (1000-row page vs ~50-span trace).\n\n");
  return report.write() ? 0 : 1;
}
