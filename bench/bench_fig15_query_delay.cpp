// Fig 15 — user query delay: span-list queries over a 15-minute window and
// full trace-assembly queries, each issued sequentially and in random order
// (paper: trace query ~1 s on the production store; span list ~0.06 s).
// Queries here run against an in-memory store, so absolute numbers are
// faster; the shape to check is trace >> span-list and sequential ~ random.
#include <algorithm>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

struct QueryStats {
  double mean_ms = 0;
  double max_ms = 0;
};

template <typename Fn>
QueryStats measure(size_t count, Fn&& run_one) {
  QueryStats stats;
  double total = 0;
  for (size_t i = 0; i < count; ++i) {
    const bench::WallTimer timer;
    run_one(i);
    const double ms = timer.elapsed_seconds() * 1e3;
    total += ms;
    stats.max_ms = std::max(stats.max_ms, ms);
  }
  stats.mean_ms = total / static_cast<double>(count);
  return stats;
}

}  // namespace
}  // namespace deepflow

int main() {
  using namespace deepflow;
  bench::print_header(
      "Fig 15 — query delay (span-list over a 15-minute window; full trace\n"
      "assembly from a user-chosen span; sequential and random order)");

  // Load the store through the real pipeline: the Spring Boot demo at a
  // rate that spreads spans over a 15-minute simulated window.
  workloads::Topology topo = workloads::make_spring_boot_demo();
  core::Deployment deepflow(topo.cluster.get());
  if (!deepflow.deploy()) return 1;
  topo.app->run_constant_load(topo.entry, 10.0, 900 * kSecond);
  deepflow.finish();
  const auto& server = deepflow.server();
  std::printf("  store: %zu spans from %llu sessions\n",
              server.store().row_count(),
              (unsigned long long)server.ingested_spans());

  // Candidate starting spans: one client span per request.
  std::vector<u64> starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  if (starts.empty()) {
    std::fprintf(stderr, "no starting spans found\n");
    return 1;
  }
  Rng rng(77);
  std::vector<u64> shuffled = starts;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }

  constexpr size_t kQueries = 200;
  // Span lists are paginated views (1000 rows per page, like the UI).
  constexpr size_t kPage = 1'000;
  const QueryStats span_list_seq = measure(kQueries, [&](size_t i) {
    const TimestampNs from = (i % 60) * 15 * kSecond;
    auto spans = server.query_span_list(from, from + 900 * kSecond, kPage);
    if (spans.empty()) std::abort();
  });
  const QueryStats span_list_rand = measure(kQueries, [&](size_t i) {
    const TimestampNs from = (rng.below(60)) * 15 * kSecond + i % 3;
    auto spans = server.query_span_list(from, from + 900 * kSecond, kPage);
    if (spans.empty()) std::abort();
  });
  const QueryStats trace_seq = measure(kQueries, [&](size_t i) {
    auto trace = server.query_trace(starts[i % starts.size()]);
    if (trace.spans.empty()) std::abort();
  });
  const QueryStats trace_rand = measure(kQueries, [&](size_t i) {
    auto trace = server.query_trace(shuffled[i % shuffled.size()]);
    if (trace.spans.empty()) std::abort();
  });

  std::printf("\n  %-28s %12s %12s\n", "query", "mean-ms", "max-ms");
  std::printf("  %-28s %12.3f %12.3f\n", "span list (sequential)",
              span_list_seq.mean_ms, span_list_seq.max_ms);
  std::printf("  %-28s %12.3f %12.3f\n", "span list (random)",
              span_list_rand.mean_ms, span_list_rand.max_ms);
  std::printf("  %-28s %12.3f %12.3f\n", "trace (sequential)",
              trace_seq.mean_ms, trace_seq.max_ms);
  std::printf("  %-28s %12.3f %12.3f\n", "trace (random)",
              trace_rand.mean_ms, trace_rand.max_ms);
  std::printf(
      "\n  note: the paper's absolute numbers (trace ~1 s, span list\n"
      "  ~0.06 s) are dominated by ClickHouse round-trips — Algorithm 1\n"
      "  issues up to 30 sequential database queries per trace. This store\n"
      "  is in-memory, so both queries are milliseconds; the preserved\n"
      "  properties are random ~ sequential and cost scaling with rows\n"
      "  touched (1000-row page vs ~50-span trace).\n\n");
  return 0;
}
