// Metrics-plane overhead on the ingest path.
//
// The MetricsAggregator folds every deduplicated span inside
// DeepFlowServer::ingest, so its cost rides directly on the hot path. Two
// stages measure it, metrics on vs off:
//
//   drain   the full agent drain pipeline (bookinfo @ 400 rps accumulated
//           in per-CPU perf rings, then drain + parse + aggregate + build +
//           ingest timed end to end) at 1/2/4/8 drain workers — the
//           production-shaped number the acceptance bound applies to.
//
//   store   N transport threads pushing pre-built span batches through
//           ingest_batch into a 16-shard store — the store-isolated view,
//           where the aggregator is the only difference between runs.
//           Reported as absolute fold cost (ns/span): the baseline is only
//           dedup + insert, so a percentage would mostly measure the
//           baseline's cheapness rather than the aggregator's cost.
//
// Each configuration runs three times; the median wall time is reported.
// overhead_pct keys give the throughput loss of metrics-on relative to
// metrics-off per configuration.
#include <algorithm>
#include <cinttypes>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "server/server.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

constexpr int kRepetitions = 3;

struct Measurement {
  double seconds = 0;
  u64 items = 0;

  double items_per_sec() const { return static_cast<double>(items) / seconds; }
};

double median_seconds(std::vector<double> seconds) {
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

// ---- Stage 1: agent drain pipeline (bookinfo). ---------------------------

Measurement run_drain_once(u32 workers, bool metrics_on, double rps) {
  core::DeploymentConfig config;
  config.agent.drain_workers = workers;
  config.agent.collector.cpu_count = 8;
  config.agent.collector.perf_ring_capacity = 1u << 16;
  config.server.store_shards = workers > 1 ? 8 : 1;
  config.server.metrics.enabled = metrics_on;

  workloads::Topology topo = workloads::make_bookinfo();
  core::Deployment deepflow(topo.cluster.get(), config);
  if (!deepflow.deploy()) {
    std::fprintf(stderr, "deploy failed: %s\n", deepflow.error().c_str());
    return {};
  }
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond);

  Measurement m;
  const bench::WallTimer timer;
  deepflow.finish();  // drain + parse + aggregate + build + ingest
  m.seconds = timer.elapsed_seconds();
  m.items = deepflow.server().ingested_spans();
  return m;
}

Measurement run_drain(u32 workers, bool metrics_on, double rps) {
  Measurement best;
  std::vector<double> seconds;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    best = run_drain_once(workers, metrics_on, rps);
    seconds.push_back(best.seconds);
  }
  best.seconds = median_seconds(std::move(seconds));
  return best;
}

// ---- Stage 2: isolated store ingest. -------------------------------------

Measurement run_store_once(u32 threads, bool metrics_on,
                           const bench::SyntheticCluster& cluster,
                           size_t rows) {
  std::vector<std::vector<std::vector<agent::Span>>> batches(threads);
  const size_t per_thread = rows / threads;
  constexpr size_t kBatchSpans = 256;
  for (u32 t = 0; t < threads; ++t) {
    Rng rng(20260806 + t);
    std::vector<agent::Span> batch;
    batch.reserve(kBatchSpans);
    for (size_t i = 0; i < per_thread; ++i) {
      agent::Span span = bench::make_synthetic_span(
          u64{t} * per_thread + i + 1, rng, cluster);
      // Services reuse pooled connections: bound the ephemeral-port range so
      // tuples repeat like production traffic (the default synthetic stream
      // makes nearly every span a brand-new connection, which turns the
      // flow-directory registration into the dominant cost).
      span.tuple.src_port = static_cast<u16>(40000 + rng.below(64));
      batch.push_back(std::move(span));
      if (batch.size() == kBatchSpans) {
        batches[t].push_back(std::move(batch));
        batch = {};
        batch.reserve(kBatchSpans);
      }
    }
    if (!batch.empty()) batches[t].push_back(std::move(batch));
  }

  server::ServerConfig config;
  config.store_shards = 16;
  config.metrics.enabled = metrics_on;
  server::DeepFlowServer server(&cluster.registry, config);

  Measurement m;
  const bench::WallTimer timer;
  std::vector<std::thread> senders;
  for (u32 t = 0; t < threads; ++t) {
    senders.emplace_back([&server, &batches, t] {
      for (auto& batch : batches[t]) {
        server.ingest_batch(std::move(batch));
      }
    });
  }
  for (auto& sender : senders) sender.join();
  m.seconds = timer.elapsed_seconds();
  m.items = server.ingested_spans();
  return m;
}

Measurement run_store(u32 threads, bool metrics_on,
                      const bench::SyntheticCluster& cluster, size_t rows) {
  Measurement best;
  std::vector<double> seconds;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    best = run_store_once(threads, metrics_on, cluster, rows);
    seconds.push_back(best.seconds);
  }
  best.seconds = median_seconds(std::move(seconds));
  return best;
}

double overhead_pct(const Measurement& off, const Measurement& on) {
  return 100.0 * (1.0 - on.items_per_sec() / off.items_per_sec());
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  bench::print_header(
      "Metrics-plane overhead — server ingest with the aggregator on vs off\n"
      "(median of 3 runs per configuration)");

  const double rps = args.quick ? 100.0 : 400.0;
  const std::vector<u32> worker_counts =
      args.quick ? std::vector<u32>{1, 2} : std::vector<u32>{1, 2, 4, 8};

  std::printf("\n  stage 1: agent drain pipeline (bookinfo @ %.0f rps,\n"
              "  8 sim CPUs; full finish() timed)\n", rps);
  std::printf("  %8s %14s %14s %10s\n", "workers", "off spans/s",
              "on spans/s", "overhead");
  for (const u32 workers : worker_counts) {
    const Measurement off = run_drain(workers, false, rps);
    const Measurement on = run_drain(workers, true, rps);
    const double pct = overhead_pct(off, on);
    std::printf("  %8u %14.0f %14.0f %9.2f%%\n", workers,
                off.items_per_sec(), on.items_per_sec(), pct);
    const std::string prefix = "drain_" + std::to_string(workers) + "t_";
    report.add(prefix + "metrics_off_spans_per_sec", off.items_per_sec());
    report.add(prefix + "metrics_on_spans_per_sec", on.items_per_sec());
    report.add(prefix + "overhead_pct", pct);
  }

  const size_t rows = args.quick ? 50'000 : 200'000;
  const bench::SyntheticCluster cluster =
      bench::make_synthetic_cluster(16, 16, 8);
  std::printf("\n  stage 2: isolated store ingest (%zu synthetic spans,\n"
              "  16 shards, batches of 256; every span is a client-side\n"
              "  sys span, the aggregator's most expensive fold)\n", rows);
  std::printf("  %8s %14s %14s %12s\n", "threads", "off spans/s",
              "on spans/s", "fold ns");
  for (const u32 threads : worker_counts) {
    const Measurement off = run_store(threads, false, cluster, rows);
    const Measurement on = run_store(threads, true, cluster, rows);
    // Absolute fold cost is the honest unit here: the metrics-off baseline
    // is just dedup + store insert, so a relative number mostly measures
    // how cheap the baseline is. The production-relative bound is stage 1.
    const double fold_ns =
        (1.0 / on.items_per_sec() - 1.0 / off.items_per_sec()) * 1e9;
    std::printf("  %8u %14.0f %14.0f %11.0f\n", threads, off.items_per_sec(),
                on.items_per_sec(), fold_ns);
    const std::string prefix = "store_" + std::to_string(threads) + "t_";
    report.add(prefix + "metrics_off_spans_per_sec", off.items_per_sec());
    report.add(prefix + "metrics_on_spans_per_sec", on.items_per_sec());
    report.add(prefix + "fold_ns_per_span", fold_ns);
  }

  std::printf(
      "\n  shape: the aggregator adds two striped-lock map folds and a few\n"
      "  ring writes per span (stage 2 puts the fold around a microsecond);\n"
      "  against the full drain pipeline (stage 1) that amortizes to\n"
      "  single-digit percent, and striping keeps it flat as workers scale.\n\n");
  return report.write() ? 0 : 1;
}
