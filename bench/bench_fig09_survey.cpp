// Fig 9 / Fig 10 / Tables 4-5 — production questionnaire, re-aggregated
// from the raw answers the paper publishes in Appendix C (ten Fortune
// Global 500 customers). Pure data re-emission: these figures summarize
// user studies, not system behaviour, so the reproduction is the
// aggregation logic over the published raw table.
#include <array>
#include <map>
#include <string>

#include "bench/bench_util.h"

namespace deepflow {
namespace {

struct Answer {
  const char* framework;       // Q1: Open-source / Self-developed
  const char* kernel_versions; // Q2
  const char* languages;       // Q3
  const char* components;      // Q4
  const char* loc;             // Q5
  const char* instr_time;      // Q6: time to instrument one component
  const char* instr_loc;       // Q7: LOC modified per component
  const char* workload_cut;    // Q8
  const char* before;          // Q9: fault-to-fix before DeepFlow
  const char* after;           // Q10: fault-to-fix with DeepFlow
};

// Appendix C, Table 4 (answers A1..A10).
constexpr std::array<Answer, 10> kAnswers = {{
    {"O", "2-5", "2-5", "2-5", "100-1k", "Days", "(20,100]", "20%-50%", "1Hr", "1Hr"},
    {"S", "5-10", "2-5", ">100", "3k-5k", "Days", "(0,20]", "50%-80%", "Hrs", "Hrs"},
    {"O", "2-5", "2-5", "5-10", "3k-5k", "Hrs", ">100", "20%-50%", "Hrs", "1Hr"},
    {"O", "2-5", "2-5", ">100", "3k-5k", "1Hr", "(0,20]", "50%-80%", "Hrs", "Mins"},
    {"O", "Unknown", "2-5", "20-100", ">5k", "Mins", "0", "50%-80%", "Hrs", "1Hr"},
    {"O", "2-5", "2-5", "10-20", ">5k", "Hrs", ">100", "20%-50%", "Mins", "Mins"},
    {"S", "2-5", "2-5", "5-10", "100-1k", "Hrs", ">100", ">80%", "1Hr", "1Hr"},
    {"O", "2-5", "2-5", "10-20", "1k-3k", "Mins", "0", "50%-80%", "Mins", "Mins"},
    {"O", "2-5", "2-5", "2-5", "3k-5k", "Hrs", "(20,100]", "20%-50%", "Hrs", "1Hr"},
    {"S", "2-5", "2-5", ">100", ">5k", "1Hr", "(20,100]", "0%", "1Hr", "1Hr"},
}};

template <typename Getter>
void histogram(const char* title, Getter&& get) {
  std::map<std::string, int> counts;
  for (const Answer& a : kAnswers) ++counts[get(a)];
  std::printf("  %s\n", title);
  for (const auto& [bucket, count] : counts) {
    std::printf("    %-12s %d/10  %s\n", bucket.c_str(), count,
                std::string(static_cast<size_t>(count), '#').c_str());
  }
}

}  // namespace
}  // namespace deepflow

int main() {
  using namespace deepflow;
  bench::print_header(
      "Fig 9 — instrumentation effort without DeepFlow (Appendix C data)");
  histogram("time to instrument one component (Q6):",
            [](const Answer& a) { return a.instr_time; });
  std::printf("\n");
  histogram("lines modified per component (Q7):",
            [](const Answer& a) { return a.instr_loc; });

  bench::print_header("Fig 10(a) — time to locate performance problems");
  histogram("before DeepFlow (Q9):", [](const Answer& a) { return a.before; });
  std::printf("\n");
  histogram("with DeepFlow (Q10):", [](const Answer& a) { return a.after; });

  bench::print_header("Fig 10(b) — reported workload reduction (Q8)");
  histogram("workload reduction vs prior framework:",
            [](const Answer& a) { return a.workload_cut; });

  bench::print_header("Environment diversity driving the design (Q2-Q5)");
  histogram("kernel versions in production:",
            [](const Answer& a) { return a.kernel_versions; });
  std::printf("\n");
  histogram("microservice component count:",
            [](const Answer& a) { return a.components; });
  std::printf("\n");
  return 0;
}
