// Ingest-pipeline scaling: throughput of the multi-threaded, sharded span
// ingestion path at 1/2/4/8 threads.
//
// Two stages are measured separately, mirroring the production split:
//
//   server  N transport threads push pre-built span batches into the
//           sharded SpanStore through DeepFlowServer::ingest_batch — the
//           striped-lock, per-shard-encoder path. Spans are generated
//           up front so the measurement isolates the store.
//
//   agent   one bookinfo-derived traffic run accumulates records in the
//           per-CPU perf rings (8 simulated CPUs, enlarged rings, no
//           drain while traffic flows); the drain+parse+aggregate pipeline
//           then runs with 1/2/4/8 drain workers and is timed end to end.
//
// Speedups are relative to the 1-thread row. NOTE: wall-clock scaling
// requires real hardware parallelism — on a single-core container every
// configuration shares one CPU and the parallel rows mostly measure
// coordination overhead; run on a multi-core host for the real curve. The
// ingest self-telemetry (batch counts/sizes, staging pressure, per-shard
// row balance) is printed for the largest configuration of each stage.
#include <cinttypes>
#include <thread>

#include "bench/bench_util.h"
#include "core/deployment.h"
#include "server/server.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

constexpr size_t kBatchSpans = 256;

/// Workload knobs; --quick shrinks everything to a sanitizer-smoke size
/// (the TSan gate in scripts/check.sh runs the full pipeline this way).
struct BenchScale {
  size_t store_rows = 400'000;
  double load_rps = 400.0;
  DurationNs load_duration = 1 * kSecond;
  std::vector<u32> thread_counts = {1, 2, 4, 8};
};

BenchScale scale_for(const bench::BenchArgs& args) {
  BenchScale scale;
  if (args.quick) {
    scale.store_rows = 20'000;
    scale.load_rps = 100.0;
    scale.load_duration = 300 * kMillisecond;
    scale.thread_counts = {1, 8};
  }
  return scale;
}

struct StageResult {
  u32 threads = 0;
  double seconds = 0;
  u64 items = 0;
  server::IngestTelemetry telemetry;
};

// ---- Stage 1: sharded-store ingest. --------------------------------------

StageResult run_store_ingest(u32 threads, size_t store_rows,
                             const bench::SyntheticCluster& cluster) {
  // Batches are pre-built per thread so the timed section contains only
  // ingest_batch calls (telemetry, shard hash, striped lock, encode).
  std::vector<std::vector<std::vector<agent::Span>>> batches(threads);
  const size_t per_thread = store_rows / threads;
  for (u32 t = 0; t < threads; ++t) {
    Rng rng(20230806 + t);
    std::vector<agent::Span> batch;
    batch.reserve(kBatchSpans);
    for (size_t i = 0; i < per_thread; ++i) {
      batch.push_back(bench::make_synthetic_span(
          u64{t} * per_thread + i + 1, rng, cluster));
      if (batch.size() == kBatchSpans) {
        batches[t].push_back(std::move(batch));
        batch = {};
        batch.reserve(kBatchSpans);
      }
    }
    if (!batch.empty()) batches[t].push_back(std::move(batch));
  }

  server::ServerConfig config;
  config.store_shards = 16;
  server::DeepFlowServer server(&cluster.registry, config);

  StageResult result;
  result.threads = threads;
  const bench::WallTimer timer;
  std::vector<std::thread> senders;
  for (u32 t = 0; t < threads; ++t) {
    senders.emplace_back([&server, &batches, t] {
      for (auto& batch : batches[t]) {
        server.ingest_batch(std::move(batch));
      }
    });
  }
  for (auto& sender : senders) sender.join();
  result.seconds = timer.elapsed_seconds();
  result.items = server.ingested_spans();
  result.telemetry = server.ingest_telemetry();
  return result;
}

// ---- Stage 2: agent drain pipeline. --------------------------------------

StageResult run_agent_drain(u32 workers, const BenchScale& scale) {
  core::DeploymentConfig config;
  config.agent.drain_workers = workers;
  config.agent.collector.cpu_count = 8;
  // Large enough that a full 1-second bookinfo run fits in the rings with
  // zero drops while nothing drains.
  config.agent.collector.perf_ring_capacity = 1u << 16;
  config.server.store_shards = workers > 1 ? 8 : 1;

  workloads::Topology topo = workloads::make_bookinfo();
  core::Deployment deepflow(topo.cluster.get(), config);
  if (!deepflow.deploy()) {
    std::fprintf(stderr, "deploy failed: %s\n", deepflow.error().c_str());
    return {};
  }
  topo.app->run_constant_load(topo.entry, scale.load_rps, scale.load_duration);

  StageResult result;
  result.threads = workers;
  const bench::WallTimer timer;
  deepflow.finish();  // drain + parse + aggregate + build + ingest
  result.seconds = timer.elapsed_seconds();
  const agent::AgentStats stats = deepflow.aggregate_stats();
  result.items = stats.syscall_records + stats.packet_records;
  result.telemetry = deepflow.server().ingest_telemetry();
  if (stats.perf_lost != 0) {
    std::fprintf(stderr, "  WARNING: %" PRIu64
                 " records lost to full perf rings — grow "
                 "perf_ring_capacity\n", stats.perf_lost);
  }
  return result;
}

void print_scaling(const char* unit, const std::vector<StageResult>& rows,
                   const char* stage, bench::JsonReport& report) {
  std::printf("\n  %8s %12s %14s %12s\n", "threads", "seconds",
              unit, "speedup");
  for (const StageResult& row : rows) {
    std::printf("  %8u %12.3f %14.0f %11.2fx\n", row.threads, row.seconds,
                static_cast<double>(row.items) / row.seconds,
                rows[0].seconds / row.seconds);
    report.add(std::string(stage) + "_" + std::to_string(row.threads) +
                   "t_items_per_sec",
               static_cast<double>(row.items) / row.seconds);
  }
}

void print_telemetry(const server::IngestTelemetry& t) {
  std::printf("    spans=%" PRIu64 " batches=%" PRIu64
              " batched-spans=%" PRIu64 " max-batch=%" PRIu64 "\n",
              t.spans, t.batches, t.batched_spans, t.max_batch_spans);
  std::printf("    agent drain: batches=%" PRIu64 " records=%" PRIu64
              " staging-waits=%" PRIu64 " perf-lost=%" PRIu64 "\n",
              t.agent_drain_batches, t.agent_drain_records,
              t.agent_staging_waits, t.agent_perf_lost);
  std::printf("    shard rows:");
  for (const size_t rows : t.shard_rows) std::printf(" %zu", rows);
  std::printf("\n");
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  const unsigned cores = std::thread::hardware_concurrency();
  bench::print_header(
      "Ingest scaling — sharded span store + parallel agent drain\n"
      "(speedups need hardware parallelism; detected " +
      std::to_string(cores) + " core(s))");

  const bench::SyntheticCluster cluster =
      bench::make_synthetic_cluster(16, 16, 8);
  const BenchScale scale = scale_for(args);

  std::printf("\n  stage 1: sharded SpanStore ingest (%zu spans, 16 shards,\n"
              "  batches of %zu via DeepFlowServer::ingest_batch)\n",
              scale.store_rows, kBatchSpans);
  std::vector<StageResult> store_rows;
  for (const u32 threads : scale.thread_counts) {
    store_rows.push_back(run_store_ingest(threads, scale.store_rows, cluster));
  }
  print_scaling("spans/sec", store_rows, "store_ingest", report);
  std::printf("\n  ingest telemetry (largest row):\n");
  print_telemetry(store_rows.back().telemetry);

  std::printf("\n  stage 2: agent drain pipeline (bookinfo @ %.0f rps, 8 sim\n"
              "  CPUs; drain + parse + aggregate + build, timed end to end)\n",
              scale.load_rps);
  std::vector<StageResult> drain_rows;
  for (const u32 workers : scale.thread_counts) {
    drain_rows.push_back(run_agent_drain(workers, scale));
  }
  print_scaling("records/sec", drain_rows, "agent_drain", report);
  std::printf("\n  ingest telemetry (largest worker row):\n");
  print_telemetry(drain_rows.back().telemetry);
  std::printf("\n");
  return report.write() ? 0 : 1;
}
