// Storage-tier micro bench: flush overhead on the ingest path, segment
// encoding density, cold recovery and warm-scan throughput, compaction cost.
// Feeds the EXPERIMENTS.md flush-overhead/cold-query table.
//
//   bench_storage [--quick] [--json out.json]
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "server/span_store.h"
#include "storage/segment_store.h"

namespace deepflow {
namespace {

namespace fs = std::filesystem;

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmt_rate(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fM spans/s", v / 1e6);
  return buf;
}

int run(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const size_t span_count = args.quick ? 20'000 : 200'000;
  const u32 segment_spans = 4'096;

  bench::print_header("Storage tier: flush, recovery and warm-scan throughput");
  const auto cluster = bench::make_synthetic_cluster(8, 8, 4);
  Rng rng(2024);
  std::vector<agent::Span> spans;
  spans.reserve(span_count);
  for (size_t i = 0; i < span_count; ++i) {
    spans.push_back(bench::make_synthetic_span(i + 1, rng, cluster));
  }

  const fs::path dir =
      fs::temp_directory_path() /
      ("df-bench-storage-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  bench::JsonReport report(args.json_path);
  report.add("spans", static_cast<double>(span_count));

  // Baseline: the same ingest with the storage tier off.
  double baseline_rate = 0;
  {
    server::SpanStore store(server::EncoderKind::kSmart, &cluster.registry);
    bench::WallTimer timer;
    for (const agent::Span& s : spans) store.insert(s);
    const double secs = timer.elapsed_seconds();
    baseline_rate = static_cast<double>(span_count) / secs;
    bench::print_row("ingest, storage off", fmt_rate(baseline_rate));
    report.add("ingest_baseline_spans_per_sec", baseline_rate);
  }

  // Flush-enabled ingest: inline sealing at segment_spans, then a forced
  // flush of the tail — the full durability cost on the write path.
  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.string();
  config.segment_spans = segment_spans;
  u64 disk_bytes = 0;
  {
    server::SpanStore store(server::EncoderKind::kSmart, &cluster.registry, 1,
                            config);
    bench::WallTimer timer;
    for (const agent::Span& s : spans) store.insert(s);
    store.flush_storage();
    const double secs = timer.elapsed_seconds();
    const double rate = static_cast<double>(span_count) / secs;
    const storage::StorageTelemetry t = store.storage_telemetry();
    disk_bytes = t.disk_bytes;
    const double overhead_pct =
        baseline_rate > 0 ? (baseline_rate / rate - 1.0) * 100.0 : 0;
    bench::print_row("ingest + inline flush", fmt_rate(rate));
    bench::print_row("flush overhead vs baseline",
                     fmt_double(overhead_pct) + "%");
    bench::print_row("segments written", std::to_string(t.segments_written));
    bench::print_row(
        "segment bytes/span",
        fmt_double(static_cast<double>(t.disk_bytes) / span_count));
    report.add("ingest_flush_spans_per_sec", rate);
    report.add("flush_overhead_pct", overhead_pct);
    report.add("segment_bytes_per_span",
               static_cast<double>(t.disk_bytes) / span_count);
    // Compaction pass over the hot-backed files.
    bench::WallTimer compact_timer;
    store.compact_storage();
    const double compact_secs = compact_timer.elapsed_seconds();
    bench::print_row("compaction pass", fmt_double(compact_secs * 1e3) + " ms");
    report.add("compaction_ms", compact_secs * 1e3);
  }

  // Cold recovery: validate + open every segment, claim every id.
  {
    bench::WallTimer timer;
    server::SpanStore store(server::EncoderKind::kSmart, &cluster.registry, 1,
                            config);
    const double secs = timer.elapsed_seconds();
    const storage::StorageTelemetry t = store.storage_telemetry();
    const double rate = static_cast<double>(t.recovered_spans) / secs;
    bench::print_row("cold recovery", fmt_rate(rate));
    report.add("recover_spans_per_sec", rate);

    // Warm scan: promote + materialize every recovered span (the cold-query
    // worst case — nothing is in RAM yet).
    bench::WallTimer scan_timer;
    const auto ids = store.span_list(0, ~TimestampNs{0});
    const auto rows = store.materialize_many(ids);
    const double scan_secs = scan_timer.elapsed_seconds();
    const double scan_rate = static_cast<double>(rows.size()) / scan_secs;
    bench::print_row("warm scan (cold query)", fmt_rate(scan_rate));
    report.add("warm_scan_spans_per_sec", scan_rate);

    // Hot re-read of the now-promoted rows for the hot/cold ratio.
    bench::WallTimer hot_timer;
    const auto hot_rows = store.materialize_many(ids);
    const double hot_secs = hot_timer.elapsed_seconds();
    bench::print_row("warm re-scan (promoted)",
                     fmt_rate(static_cast<double>(hot_rows.size()) / hot_secs));
    report.add("warm_rescan_spans_per_sec",
               static_cast<double>(hot_rows.size()) / hot_secs);
  }

  bench::print_row("disk bytes", std::to_string(disk_bytes));
  report.add("disk_bytes", static_cast<double>(disk_bytes));
  fs::remove_all(dir);
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace deepflow

int main(int argc, char** argv) { return deepflow::run(argc, argv); }
