// Ablation — Algorithm 1 iteration cap vs trace completeness.
//
// The iterative span search stops when the set stops growing or after
// `max_iterations` rounds (paper default: 30). Deep call chains need one
// iteration per association hop; this sweep assembles Bookinfo traces under
// different caps and reports recovered spans and assembly cost.
#include "bench/bench_util.h"
#include "core/deployment.h"
#include "workloads/topologies.h"

int main(int argc, char** argv) {
  using namespace deepflow;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport report(args.json_path);
  bench::print_header(
      "Ablation — trace-assembly iteration cap (paper default: 30)\n"
      "workload: polyglot app (HTTP -> DNS/HTTP2/Kafka -> Dubbo): no\n"
      "X-Request-ID shortcut, so the search must hop association keys\n"
      "(tcp seq -> systrace -> tcp seq -> ...) one iteration at a time");

  workloads::Topology topo = workloads::make_polyglot();
  core::Deployment deepflow(topo.cluster.get());
  if (!deepflow.deploy()) return 1;
  topo.app->run_constant_load(topo.entry, 20.0,
                              args.quick ? 1 * kSecond : 2 * kSecond);
  deepflow.finish();

  const auto starts = deepflow.server().find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  if (starts.empty()) return 1;

  std::printf("  %12s %14s %14s %12s\n", "iterations", "spans/trace",
              "iters-used", "mean-ms");
  for (const u32 cap : {1u, 2u, 3u, 4u, 5u, 8u, 30u}) {
    server::TraceAssembler assembler(
        &deepflow.server().store(),
        server::AssemblerConfig{.max_iterations = cap});
    size_t total_spans = 0;
    u32 max_used = 0;
    const bench::WallTimer timer;
    for (const u64 start : starts) {
      const server::AssembledTrace trace = assembler.assemble(start);
      total_spans += trace.spans.size();
      max_used = std::max(max_used, trace.iterations_used);
    }
    const double spans_per_trace = static_cast<double>(total_spans) /
                                   static_cast<double>(starts.size());
    const double mean_ms = timer.elapsed_seconds() * 1e3 /
                           static_cast<double>(starts.size());
    std::printf("  %12u %14.1f %14u %12.3f\n", cap, spans_per_trace, max_used,
                mean_ms);
    const std::string prefix = "iterations_cap_" + std::to_string(cap) + "_";
    report.add(prefix + "spans_per_trace", spans_per_trace);
    report.add(prefix + "mean_ms", mean_ms);
  }
  std::printf(
      "\n  shape: spans/trace grows with the cap until the search converges\n"
      "  (set stops updating); further iterations are free because the loop\n"
      "  exits early — which is why the paper can default to 30.\n\n");
  return report.write() ? 0 : 1;
}
